//! Packed **ternary** (0/1/X) fault simulation — the model-generic
//! reference oracle for the differential test harness.
//!
//! The binary fault sweep in `faultsim` is exact for acyclic fault models
//! (stuck-at, multiple stuck-at, non-feedback bridges), but a *feedback*
//! bridge couples a wire to its own fanout cone: the faulted circuit has a
//! structural loop, and a single topological sweep no longer settles it.
//! This module simulates the faulted circuit over the three-valued domain
//! instead: every net carries dual rails — a "definitely 1" word and a
//! "definitely 0" word, 64 vectors per sweep — and the simulator runs
//! Gauss–Seidel sweeps from all-X until nothing changes. The iteration is
//! monotone (rails only gain vectors), so it converges to the **least
//! fixpoint**: exactly the ternary semantics the Difference Propagation
//! engine computes symbolically, which is what makes these routines a
//! trustworthy independent oracle for every fault model at once.
//!
//! Vectors on which the bridged wire never leaves X are *oscillating*: the
//! loop admits no stable assignment (or several, unreachable from X). The
//! reproduction treats them pessimistically — they are reported separately
//! and never counted as detections.

use dp_faults::{BridgeKind, Fault, FaultSite, StuckAtFault};
use dp_netlist::{Circuit, Driver, GateKind};

use crate::packed::{exhaustive_pattern, PackedSim};

/// One ternary value: a definite bit or X (unknown / oscillating).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tern {
    /// Definitely 0.
    Zero,
    /// Definitely 1.
    One,
    /// Unknown — the net never settled on this vector.
    X,
}

impl Tern {
    fn from_rails(hi: bool, lo: bool) -> Tern {
        debug_assert!(!(hi && lo), "a net cannot be definitely 0 and 1 at once");
        match (hi, lo) {
            (true, _) => Tern::One,
            (_, true) => Tern::Zero,
            _ => Tern::X,
        }
    }
}

/// Kleene evaluation of one gate over packed dual rails: the output is
/// definite exactly on the lanes where its inputs force it.
fn eval_ternary(kind: GateKind, his: &[u64], los: &[u64]) -> (u64, u64) {
    match kind {
        GateKind::Not => (los[0], his[0]),
        GateKind::Buf => (his[0], los[0]),
        GateKind::And | GateKind::Nand => {
            let hi = his.iter().fold(!0u64, |acc, &x| acc & x);
            let lo = los.iter().fold(0u64, |acc, &x| acc | x);
            if kind == GateKind::Nand {
                (lo, hi)
            } else {
                (hi, lo)
            }
        }
        GateKind::Or | GateKind::Nor => {
            let hi = his.iter().fold(0u64, |acc, &x| acc | x);
            let lo = los.iter().fold(!0u64, |acc, &x| acc & x);
            if kind == GateKind::Nor {
                (lo, hi)
            } else {
                (hi, lo)
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            // Parity is definite only where every input is.
            let defined = his
                .iter()
                .zip(los)
                .fold(!0u64, |acc, (&h, &l)| acc & (h | l));
            let v = his.iter().fold(0u64, |acc, &x| acc ^ x);
            let (hi, lo) = (defined & v, defined & !v);
            if kind == GateKind::Xnor {
                (lo, hi)
            } else {
                (hi, lo)
            }
        }
    }
}

/// Dual rails of every net in the faulted circuit over 64 packed vectors:
/// `(hi, lo)` indexed by net, where bit `j` of `hi[n]` means net `n` is
/// definitely 1 on vector `j` (and symmetrically for `lo`).
///
/// Runs monotone Gauss–Seidel sweeps from all-X to the least fixpoint, so
/// any fault model is handled — including feedback bridges, whose loop may
/// leave residual X (oscillation) on some lanes.
fn faulty_rails(circuit: &Circuit, fault: &Fault, inputs: &[u64]) -> (Vec<u64>, Vec<u64>) {
    assert_eq!(inputs.len(), circuit.num_inputs(), "packed input count mismatch");
    let nn = circuit.num_nets();
    // Forced rails per net (stuck stems) and per gate pin (stuck branches).
    let mut net_force: Vec<Option<(u64, u64)>> = vec![None; nn];
    let mut pin_force: Vec<(usize, usize, u64, u64)> = Vec::new();
    let mut bridge: Option<(usize, usize, BridgeKind)> = None;
    let stuck_rails = |f: &StuckAtFault| if f.value { (!0u64, 0u64) } else { (0u64, !0u64) };
    let mut components: Vec<StuckAtFault> = Vec::new();
    match fault {
        Fault::StuckAt(f) => components.push(*f),
        Fault::MultiStuckAt(m) => components.extend_from_slice(m.components()),
        Fault::Bridging(f) => bridge = Some((f.a.index(), f.b.index(), f.kind)),
    }
    for f in &components {
        let rails = stuck_rails(f);
        match f.site {
            FaultSite::Net(n) => net_force[n.index()] = Some(rails),
            FaultSite::Branch(b) => pin_force.push((b.sink.index(), b.pin, rails.0, rails.1)),
        }
    }
    let mut pi_word: Vec<Option<u64>> = vec![None; nn];
    for (i, &pi) in circuit.inputs().iter().enumerate() {
        pi_word[pi.index()] = Some(inputs[i]);
    }

    let mut hi = vec![0u64; nn];
    let mut lo = vec![0u64; nn];
    // Driven (pre-wiring) rails of the two bridged wires, persisted across
    // sweeps so the wired value always uses the freshest of both drivers.
    let mut driven = [(0u64, 0u64); 2];
    let (mut his, mut los): (Vec<u64>, Vec<u64>) = (Vec::new(), Vec::new());
    // A monotone chaotic iteration settles in at most one sweep per rail
    // bit along the longest loop; this cap is far beyond any real netlist
    // and turns a (impossible, by monotonicity) livelock into a panic.
    let max_sweeps = 2 * nn + 8;
    let mut sweeps = 0;
    loop {
        sweeps += 1;
        assert!(sweeps <= max_sweeps, "ternary sweep failed to converge");
        let mut changed = false;
        for n in circuit.nets() {
            let idx = n.index();
            let (mut dh, mut dl) = if let Some(w) = pi_word[idx] {
                (w, !w)
            } else if let Driver::Gate { kind, fanins } = circuit.driver(n) {
                his.clear();
                los.clear();
                for (pin, f) in fanins.iter().enumerate() {
                    let (mut fh, mut fl) = (hi[f.index()], lo[f.index()]);
                    if let Some(&(_, _, ph, pl)) = pin_force
                        .iter()
                        .find(|&&(sink, p, _, _)| sink == idx && p == pin)
                    {
                        (fh, fl) = (ph, pl);
                    }
                    his.push(fh);
                    los.push(fl);
                }
                eval_ternary(*kind, &his, &los)
            } else {
                continue;
            };
            if let Some((ai, bi, kind)) = bridge {
                if idx == ai || idx == bi {
                    driven[usize::from(idx == bi)] = (dh, dl);
                    let ((ah, al), (bh, bl)) = (driven[0], driven[1]);
                    (dh, dl) = match kind {
                        BridgeKind::And => (ah & bh, al | bl),
                        BridgeKind::Or => (ah | bh, al & bl),
                    };
                }
            }
            if let Some((fh, fl)) = net_force[idx] {
                (dh, dl) = (fh, fl);
            }
            if (dh, dl) != (hi[idx], lo[idx]) {
                // Chaotic iteration from ⊥ of a monotone system: rails only
                // ever gain lanes, which is what guarantees convergence.
                debug_assert_eq!(dh & hi[idx], hi[idx], "hi rail lost a lane");
                debug_assert_eq!(dl & lo[idx], lo[idx], "lo rail lost a lane");
                hi[idx] = dh;
                lo[idx] = dl;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (hi, lo)
}

/// The net whose residual X counts as oscillation: the bridged wire (both
/// carry the same wired value), or `None` for acyclic fault models, which
/// always settle everywhere.
fn oscillation_site(fault: &Fault) -> Option<usize> {
    match fault {
        Fault::Bridging(f) => Some(f.a.index()),
        Fault::StuckAt(_) | Fault::MultiStuckAt(_) => None,
    }
}

/// Exhaustive ternary detectability counts for any fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TernaryDetectability {
    /// Vectors with a *definite* difference at some primary output.
    pub detected: u64,
    /// Vectors on which the fault site never settled (feedback bridges
    /// only; always 0 for acyclic fault models).
    pub oscillating: u64,
    /// Total vectors simulated (`2^n`).
    pub total: u64,
}

/// Simulates all `2^n` vectors through the ternary fixpoint and counts
/// definite detections and oscillating vectors.
///
/// For acyclic fault models every value settles, so `detected` equals
/// [`crate::exhaustive_detectability`]'s count — the cross-check the
/// differential suite leans on. For feedback bridges this is the reference
/// semantics the DP engine must match vector-for-vector.
///
/// # Panics
///
/// Panics if the circuit has more than 30 primary inputs.
pub fn ternary_exhaustive_detectability(circuit: &Circuit, fault: &Fault) -> TernaryDetectability {
    let n = circuit.num_inputs();
    assert!(n <= 30, "exhaustive simulation beyond 30 inputs is intractable");
    let total: u64 = 1 << n;
    let blocks = total.div_ceil(64).max(1);
    let mut sim = PackedSim::new(circuit);
    let osc_site = oscillation_site(fault);
    let mut detected = 0u64;
    let mut oscillating = 0u64;
    let mut inputs = vec![0u64; n];
    for block in 0..blocks {
        for (i, word) in inputs.iter_mut().enumerate() {
            *word = exhaustive_pattern(i, block);
        }
        let good: Vec<u64> = {
            let values = sim.run(&inputs);
            circuit.outputs().iter().map(|o| values[o.index()]).collect()
        };
        let (hi, lo) = faulty_rails(circuit, fault, &inputs);
        let mut diff = 0u64;
        for (k, &o) in circuit.outputs().iter().enumerate() {
            diff |= (hi[o.index()] & !good[k]) | (lo[o.index()] & good[k]);
        }
        let mut osc = osc_site.map_or(0, |s| !(hi[s] | lo[s]));
        if total < 64 {
            let mask = (1u64 << total) - 1;
            diff &= mask;
            osc &= mask;
        }
        detected += diff.count_ones() as u64;
        oscillating += osc.count_ones() as u64;
    }
    TernaryDetectability {
        detected,
        oscillating,
        total,
    }
}

/// Ternary output values of the faulted circuit on one input vector.
///
/// # Panics
///
/// Panics if `vector.len()` differs from the circuit's input count.
pub fn ternary_faulty_outputs(circuit: &Circuit, fault: &Fault, vector: &[bool]) -> Vec<Tern> {
    let inputs: Vec<u64> = vector.iter().map(|&b| u64::from(b)).collect();
    let (hi, lo) = faulty_rails(circuit, fault, &inputs);
    circuit
        .outputs()
        .iter()
        .map(|o| Tern::from_rails(hi[o.index()] & 1 == 1, lo[o.index()] & 1 == 1))
        .collect()
}

/// Returns `true` when `vector` *definitely* detects `fault`: some primary
/// output settles on the opposite of its good value. An output left at X
/// does not count — the pessimistic reading of an oscillating loop.
///
/// # Panics
///
/// Panics if `vector.len()` differs from the circuit's input count.
pub fn ternary_detects(circuit: &Circuit, fault: &Fault, vector: &[bool]) -> bool {
    let good = circuit.eval(vector);
    let bad = ternary_faulty_outputs(circuit, fault, vector);
    good.iter().zip(&bad).any(|(&g, &b)| match b {
        Tern::One => !g,
        Tern::Zero => g,
        Tern::X => false,
    })
}

/// Sampled dual rails at one net over random vectors — internal hook for
/// `sampled_fault_estimate`'s bridge path.
pub(crate) fn faulty_rails_block(
    circuit: &Circuit,
    fault: &Fault,
    inputs: &[u64],
) -> (Vec<u64>, Vec<u64>) {
    faulty_rails(circuit, fault, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_faults::{
        checkpoint_faults, enumerate_bridges, enumerate_nfbfs, pair_multis, BridgeKind,
        BridgeTopology, BridgingFault,
    };
    use dp_netlist::generators::{c17, c95, full_adder};

    /// On acyclic fault models the ternary oracle settles everywhere and
    /// reproduces the binary sweep exactly.
    #[test]
    fn acyclic_models_match_binary_simulation() {
        let c = c17();
        for f in checkpoint_faults(&c) {
            let fault = Fault::from(f);
            let t = ternary_exhaustive_detectability(&c, &fault);
            let (det, total) = crate::exhaustive_detectability(&c, &fault);
            assert_eq!((t.detected, t.total), (det, total), "{fault}");
            assert_eq!(t.oscillating, 0, "{fault}");
        }
        for kind in [BridgeKind::And, BridgeKind::Or] {
            for f in enumerate_nfbfs(&c, kind) {
                let fault = Fault::from(f);
                let t = ternary_exhaustive_detectability(&c, &fault);
                let (det, _) = crate::exhaustive_detectability(&c, &fault);
                assert_eq!(t.detected, det, "{fault}");
                assert_eq!(t.oscillating, 0, "{fault}");
            }
        }
        for m in pair_multis(&full_adder()).into_iter().step_by(17) {
            let fault = Fault::from(m);
            let t = ternary_exhaustive_detectability(&full_adder(), &fault);
            let (det, _) = crate::exhaustive_multi_detectability(
                &full_adder(),
                match &fault {
                    Fault::MultiStuckAt(m) => m.components(),
                    _ => unreachable!(),
                },
            );
            assert_eq!(t.detected, det, "{fault}");
        }
    }

    /// An OR-bridge between a wire and its own inverted fanout oscillates
    /// on the vectors where neither side pins the loop: the classic ring
    /// x ─ NOT ─ x.
    #[test]
    fn inverting_loop_oscillates() {
        use dp_netlist::CircuitBuilder;
        let mut b = CircuitBuilder::new("ring");
        let x = b.input("x");
        let y = b.input("y");
        let nx = b.not("nx", x).unwrap();
        let g = b.gate("g", dp_netlist::GateKind::And, &[nx, y]).unwrap();
        b.output(g);
        let c = b.finish().unwrap();
        // Bridge x with g = AND(¬x, y): feedback through the NOT.
        let fault = Fault::from(BridgingFault::new(x, g, BridgeKind::Or));
        let t = ternary_exhaustive_detectability(&c, &fault);
        assert_eq!(t.total, 4);
        // On x=0, y=1 the wired-OR loop w = w ∨ (¬w ∧ 1) admits no stable
        // X-free value reachable from X: the wire oscillates.
        assert!(t.oscillating > 0, "{t:?}");
        // Oscillating vectors are not detections.
        assert!(t.detected + t.oscillating <= t.total);
    }

    /// Every feedback bridge of c17 terminates and reports coherent counts.
    #[test]
    fn feedback_bridges_terminate_on_c17() {
        let c = c17();
        for kind in [BridgeKind::And, BridgeKind::Or] {
            for f in enumerate_bridges(&c, kind, BridgeTopology::Feedback) {
                let fault = Fault::from(f);
                let t = ternary_exhaustive_detectability(&c, &fault);
                assert!(t.detected + t.oscillating <= t.total, "{fault}: {t:?}");
                // Scalar wrapper agrees with the packed count lane-by-lane.
                let mut scalar = 0u64;
                for v in 0..t.total {
                    let vector: Vec<bool> = (0..c.num_inputs()).map(|i| v >> i & 1 == 1).collect();
                    if ternary_detects(&c, &fault, &vector) {
                        scalar += 1;
                    }
                }
                assert_eq!(scalar, t.detected, "{fault}");
            }
        }
    }

    /// Ternary values at the outputs are definite whenever the binary
    /// simulator and the good circuit agree the model is acyclic.
    #[test]
    fn scalar_outputs_are_definite_for_stuck_faults() {
        let c = c95();
        let faults = checkpoint_faults(&c);
        for f in faults.iter().take(6) {
            let fault = Fault::from(*f);
            let vector: Vec<bool> = (0..c.num_inputs()).map(|i| i % 3 == 0).collect();
            let tern = ternary_faulty_outputs(&c, &fault, &vector);
            let binary = crate::faulty_outputs(&c, &fault, &vector);
            for (t, b) in tern.iter().zip(&binary) {
                assert_eq!(*t, if *b { Tern::One } else { Tern::Zero });
            }
        }
    }
}
