//! 64-way bit-parallel circuit evaluation.

use dp_netlist::{Circuit, Driver, GateKind, NetId};

/// Evaluates a gate over packed 64-vector words.
fn eval_packed(kind: GateKind, inputs: &[u64]) -> u64 {
    match kind {
        GateKind::Not => !inputs[0],
        GateKind::Buf => inputs[0],
        GateKind::And => inputs.iter().fold(!0u64, |acc, &x| acc & x),
        GateKind::Nand => !inputs.iter().fold(!0u64, |acc, &x| acc & x),
        GateKind::Or => inputs.iter().fold(0u64, |acc, &x| acc | x),
        GateKind::Nor => !inputs.iter().fold(0u64, |acc, &x| acc | x),
        GateKind::Xor => inputs.iter().fold(0u64, |acc, &x| acc ^ x),
        GateKind::Xnor => !inputs.iter().fold(0u64, |acc, &x| acc ^ x),
    }
}

/// A bit-parallel simulator: bit `k` of every word carries the `k`-th of 64
/// concurrently simulated input vectors.
///
/// # Examples
///
/// ```
/// use dp_netlist::generators::c17;
/// use dp_sim::PackedSim;
///
/// let c = c17();
/// let mut sim = PackedSim::new(&c);
/// // Vector 0: all inputs low; vector 1: all inputs high.
/// let inputs = vec![0b10u64; 5];
/// let values = sim.run(&inputs);
/// let out22 = values[c.outputs()[0].index()];
/// assert_eq!(out22 & 0b11, 0b10); // only the all-high vector raises output 22
/// ```
#[derive(Debug)]
pub struct PackedSim<'a> {
    circuit: &'a Circuit,
    values: Vec<u64>,
    scratch: Vec<u64>,
}

impl<'a> PackedSim<'a> {
    /// Creates a simulator bound to a circuit.
    pub fn new(circuit: &'a Circuit) -> Self {
        PackedSim {
            circuit,
            values: vec![0; circuit.num_nets()],
            scratch: Vec::new(),
        }
    }

    /// Simulates 64 vectors at once. `inputs[i]` packs the value of primary
    /// input `i` across the 64 vectors. Returns the packed value of every
    /// net, indexed by [`NetId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the circuit's input count.
    pub fn run(&mut self, inputs: &[u64]) -> &[u64] {
        self.run_with(inputs, |_, _, v| v)
    }

    /// Simulates 64 vectors with a value interceptor: after each net's
    /// driven value is computed, `intercept(circuit, net, value)` may replace
    /// it (fault injection hooks into exactly this point).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the circuit's input count.
    pub fn run_with(
        &mut self,
        inputs: &[u64],
        mut intercept: impl FnMut(&Circuit, NetId, u64) -> u64,
    ) -> &[u64] {
        let circuit = self.circuit;
        assert_eq!(
            inputs.len(),
            circuit.num_inputs(),
            "packed input count mismatch"
        );
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            self.values[pi.index()] = intercept(circuit, pi, inputs[i]);
        }
        for n in circuit.nets() {
            if let Driver::Gate { kind, fanins } = circuit.driver(n) {
                self.scratch.clear();
                self.scratch
                    .extend(fanins.iter().map(|f| self.values[f.index()]));
                let v = eval_packed(*kind, &self.scratch);
                self.values[n.index()] = intercept(circuit, n, v);
            }
        }
        &self.values
    }

    /// The packed value of a net from the most recent run.
    pub fn value(&self, n: NetId) -> u64 {
        self.values[n.index()]
    }

    /// The circuit this simulator is bound to.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }
}

/// Packs the canonical exhaustive-enumeration pattern for input `i` within
/// block `block` of 64 consecutive vectors: vector index `v = block·64 + k`
/// assigns input `i` the bit `v >> i & 1`.
pub(crate) fn exhaustive_pattern(input: usize, block: u64) -> u64 {
    match input {
        0 => 0xAAAA_AAAA_AAAA_AAAA,
        1 => 0xCCCC_CCCC_CCCC_CCCC,
        2 => 0xF0F0_F0F0_F0F0_F0F0,
        3 => 0xFF00_FF00_FF00_FF00,
        4 => 0xFFFF_0000_FFFF_0000,
        5 => 0xFFFF_FFFF_0000_0000,
        i => {
            if block >> (i - 6) & 1 == 1 {
                !0u64
            } else {
                0u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_netlist::generators::{c17, full_adder};

    #[test]
    fn packed_matches_scalar() {
        let c = c17();
        let mut sim = PackedSim::new(&c);
        // One block of 32 exhaustive vectors (5 inputs).
        let inputs: Vec<u64> = (0..5).map(|i| exhaustive_pattern(i, 0)).collect();
        let values = sim.run(&inputs).to_vec();
        for v in 0u64..32 {
            let scalar: Vec<bool> = (0..5).map(|i| v >> i & 1 == 1).collect();
            let expect = c.eval_all(&scalar);
            for n in c.nets() {
                assert_eq!(
                    values[n.index()] >> v & 1 == 1,
                    expect[n.index()],
                    "net {n} vector {v}"
                );
            }
        }
    }

    #[test]
    fn exhaustive_pattern_is_consistent() {
        // Bit k of pattern(i, b) must equal bit i of the vector index.
        for i in 0..8 {
            for block in 0..4u64 {
                let p = exhaustive_pattern(i, block);
                for k in 0..64u64 {
                    let v = block * 64 + k;
                    assert_eq!(p >> k & 1 == 1, v >> i & 1 == 1, "i={i} v={v}");
                }
            }
        }
    }

    #[test]
    fn interceptor_can_force_values() {
        let c = full_adder();
        let target = c.find_net("axb").unwrap();
        let mut sim = PackedSim::new(&c);
        let inputs = vec![0u64; 3];
        let forced = sim
            .run_with(&inputs, |_, n, v| if n == target { !0u64 } else { v })
            .to_vec();
        // a=b=0 so axb would be 0, but forced to 1; sum = axb ^ cin = 1.
        let sum = c.outputs()[0];
        assert_eq!(forced[sum.index()], !0u64);
    }

    #[test]
    fn value_reads_last_run() {
        let c = full_adder();
        let mut sim = PackedSim::new(&c);
        sim.run(&[!0u64, !0u64, 0u64]);
        let cout = c.outputs()[1];
        assert_eq!(sim.value(cout), !0u64);
    }
}
