//! Observability for Difference Propagation sweeps.
//!
//! The paper's experiments hinge on measuring *where* analysis effort goes —
//! which faults are hard, which gates dominate propagation, how OBDD size
//! evolves. This crate is the substrate those measurements stand on:
//!
//! * an **in-process collector** ([`Collector`]) with spans for
//!   sweep → chunk → class → fault → gate-propagation, fixed-name counters
//!   ([`CounterKind`]) for op-steps, unique-table traffic, GC runs, peak/live
//!   nodes, budget trips and simulator fallbacks, and power-of-two
//!   [`LogHistogram`]s for per-fault latency and class-size profiles;
//! * a plain-data [`TelemetrySnapshot`] that survives the collector (and the
//!   worker thread) that produced it, with component-wise [`TelemetrySnapshot::merged`];
//! * the versioned, machine-readable **`sweep_report.json`** schema
//!   ([`report::SweepReport`], [`report::ReportFile`]) with a self-contained
//!   writer, parser ([`json`]) and validator ([`report::validate_report`]) —
//!   no external serialisation crates required;
//! * a feature-gated stderr trace backend (`trace-log`) standing in for a
//!   `tracing` subscriber in this offline build environment.
//!
//! # Observation-only contract
//!
//! Telemetry never feeds back into analysis: a collector records what the
//! sweep did, it never changes what the sweep computes. The repository's
//! golden layer enforces this byte-for-byte (a sweep with a detailed
//! collector attached reproduces the golden TSV of a sweep with none).
//!
//! # Overhead budget
//!
//! The collector is aggregate-only — per span *kind*, not per span — so a
//! finished span costs one `Instant::now()` subtraction and three integer
//! updates, and a counter bump is one add. The acceptance budget is ≤ 5%
//! wall-clock on the `parallel_sweep` bench; the default
//! [`TelemetryLevel::Aggregate`] level stays far below it by counting (not
//! timing) the per-gate spans, which are the only hot ones.
//!
//! # Schema versioning policy
//!
//! [`report::SCHEMA_VERSION`] is bumped whenever a field is removed, renamed,
//! or changes meaning; adding fields is allowed within a version. Consumers
//! must reject reports with a version they do not know (the validator does).

mod collector;
pub mod json;
pub mod report;

pub use collector::{
    Collector, CounterKind, HistKind, LogHistogram, SharedCollector, SpanKind, SpanStats,
    SpanTimer, TelemetryLevel, TelemetrySnapshot,
};
pub use report::{
    fnv1a64, key_paths, parse_and_validate, report_to_json, snapshot_to_json, validate_report,
    ReportFile, ShardExecution, StreamInfo, SweepExecution, SweepOutcome, SweepReport,
    KNOWN_SCHEMA_VERSIONS, SCHEMA_VERSION,
};
