//! A minimal JSON value model with a writer and a recursive-descent parser.
//!
//! The build container has no crates.io access, so the `sweep_report.json`
//! schema cannot lean on serde; this module is the self-contained
//! serialisation substrate instead. Objects preserve insertion order so the
//! emitted reports are deterministic and diffable, and integers round-trip
//! exactly through `i128` (floats are only used for derived ratios).

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Integers round-trip exactly; `u64` counters fit losslessly.
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Insertion-ordered key/value pairs (no dedup — the writer emits what
    /// you built, the validator rejects duplicate keys on parse).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object constructor from pairs.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's member pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Pretty-printed serialisation with two-space indentation and a
    /// trailing newline — the on-disk format of `sweep_report.json`.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Single-line serialisation with no intra-document newlines — the
    /// framing format of the `dp-serve` wire protocol, where one JSON
    /// document per line is the frame boundary. String escaping already
    /// guarantees embedded newlines are written as `\n`, so the output is
    /// newline-free by construction (and [`parse`] reads it back exactly).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            // Scalars render identically in both modes.
            scalar => scalar.write_pretty(out, 0),
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                use fmt::Write;
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(f) => {
                use fmt::Write;
                // Finite floats only; format with enough digits to round-trip.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures indent.
                let scalar = items
                    .iter()
                    .all(|v| !matches!(v, JsonValue::Arr(_) | JsonValue::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.write_pretty(out, depth + 1);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, v) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        v.write_pretty(out, depth + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push(']');
                }
            }
            JsonValue::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejecting trailing garbage and
/// duplicate object keys).
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.err("invalid float"))
        } else {
            text.parse::<i128>()
                .map(JsonValue::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are rejected rather than paired; the
                            // writer never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = JsonValue::obj(vec![
            ("name", JsonValue::Str("c95\t\"quoted\"".into())),
            ("count", JsonValue::Int(u64::MAX as i128)),
            ("neg", JsonValue::Int(-7)),
            ("ratio", JsonValue::Float(0.5)),
            ("whole", JsonValue::Float(3.0)),
            ("flag", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "items",
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Int(2)]),
            ),
            ("empty_obj", JsonValue::Obj(vec![])),
            ("empty_arr", JsonValue::Arr(vec![])),
        ]);
        let text = doc.to_pretty_string();
        let back = parse(&text).expect("round-trip parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn compact_form_is_single_line_and_round_trips() {
        let doc = JsonValue::obj(vec![
            ("line", JsonValue::Str("tab\there\nnewline".into())),
            ("n", JsonValue::Int(-3)),
            (
                "nested",
                JsonValue::obj(vec![("a", JsonValue::Arr(vec![JsonValue::Bool(false)]))]),
            ),
        ]);
        let text = doc.to_compact_string();
        assert!(!text.contains('\n'), "frame must be newline-free: {text:?}");
        assert_eq!(parse(&text).expect("round-trip"), doc);
    }

    #[test]
    fn preserves_insertion_order() {
        let doc = JsonValue::obj(vec![
            ("zebra", JsonValue::Int(1)),
            ("apple", JsonValue::Int(2)),
        ]);
        let text = doc.to_pretty_string();
        assert!(text.find("zebra").unwrap() < text.find("apple").unwrap());
    }

    #[test]
    fn rejects_duplicate_keys_and_trailing_garbage() {
        assert!(parse(r#"{"a": 1, "a": 2}"#).is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("").is_err());
        assert!(parse(r#"{"a""#).is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""aA\n\t\\\" ünïcödé""#).expect("parse");
        assert_eq!(v.as_str(), Some("aA\n\t\\\" ünïcödé"));
    }

    #[test]
    fn u64_counters_round_trip_exactly() {
        let text = JsonValue::Int(u64::MAX as i128).to_pretty_string();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(u64::MAX));
    }
}
