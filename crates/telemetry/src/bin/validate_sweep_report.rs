//! Validates `sweep_report.json` documents against the current schema.
//!
//! Usage:
//!
//! ```text
//! validate_sweep_report FILE [FILE ...]
//! validate_sweep_report --max-unique-ratio R BASELINE OTHER
//! ```
//!
//! Exits 0 when every file parses and validates, 1 otherwise (with one
//! diagnostic per failing file on stderr). CI runs this over the telemetry
//! artifacts produced by the c95 sweep.
//!
//! `--max-unique-ratio R` additionally compares two reports of the *same*
//! workload: the cumulative unique-table lookups of `OTHER` (summed over
//! every report's `execution.totals` section) must be at most `R` times
//! those of `BASELINE`. The CI `shared-manager` job uses this to assert
//! that a 4-thread shared-snapshot sweep does not rebuild the good
//! functions per worker — its lookup total stays within a few percent of
//! the serial run's instead of multiplying with the thread count.

use std::process::ExitCode;

use dp_telemetry::json::JsonValue;

fn usage() -> ExitCode {
    eprintln!(
        "usage: validate_sweep_report FILE [FILE ...]\n\
         \x20      validate_sweep_report --max-unique-ratio R BASELINE OTHER"
    );
    ExitCode::FAILURE
}

/// Cumulative unique-table lookups summed over every report in the file.
fn total_unique_lookups(doc: &JsonValue) -> Option<u64> {
    let reports = doc.get("reports")?.as_arr()?;
    let mut total = 0u64;
    for report in reports {
        total += report
            .get("execution")?
            .get("totals")?
            .get("counters")?
            .get("unique_lookups")?
            .as_u64()?;
    }
    Some(total)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_ratio: Option<f64> = None;
    if let Some(pos) = args.iter().position(|a| a == "--max-unique-ratio") {
        if pos + 1 >= args.len() {
            return usage();
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        match value.parse::<f64>() {
            Ok(r) if r > 0.0 => max_ratio = Some(r),
            _ => {
                eprintln!("--max-unique-ratio: `{value}` is not a positive number");
                return usage();
            }
        }
        if args.len() != 2 {
            eprintln!("--max-unique-ratio compares exactly two files (BASELINE OTHER)");
            return usage();
        }
    }
    if args.is_empty() {
        return usage();
    }
    let mut failed = false;
    let mut docs = Vec::new();
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        match dp_telemetry::parse_and_validate(&text) {
            Ok(doc) => {
                let reports = doc
                    .get("reports")
                    .and_then(|r| r.as_arr())
                    .map_or(0, |r| r.len());
                println!(
                    "{path}: valid (schema_version {}, {} report{})",
                    dp_telemetry::SCHEMA_VERSION,
                    reports,
                    if reports == 1 { "" } else { "s" }
                );
                docs.push(doc);
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if let (Some(ratio), false) = (max_ratio, failed) {
        let totals: Vec<Option<u64>> = docs.iter().map(total_unique_lookups).collect();
        match (totals[0], totals[1]) {
            (Some(baseline), Some(other)) => {
                let bound = baseline as f64 * ratio;
                if other as f64 <= bound {
                    println!(
                        "unique lookups: {other} <= {ratio} x {baseline} (baseline) — ok"
                    );
                } else {
                    eprintln!(
                        "unique lookups: {other} exceeds {ratio} x {baseline} (baseline); \
                         the sweep is rebuilding shared state per worker"
                    );
                    failed = true;
                }
            }
            _ => {
                eprintln!("cannot read execution.totals.counters.unique_lookups from both files");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
