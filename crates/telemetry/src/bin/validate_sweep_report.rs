//! Validates `sweep_report.json` documents against the current schema.
//!
//! Usage: `validate_sweep_report FILE [FILE ...]`
//!
//! Exits 0 when every file parses and validates, 1 otherwise (with one
//! diagnostic per failing file on stderr). CI runs this over the telemetry
//! artifacts produced by the c95 sweep.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_sweep_report FILE [FILE ...]");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        match dp_telemetry::parse_and_validate(&text) {
            Ok(doc) => {
                let reports = doc
                    .get("reports")
                    .and_then(|r| r.as_arr())
                    .map_or(0, |r| r.len());
                println!(
                    "{path}: valid (schema_version {}, {} report{})",
                    dp_telemetry::SCHEMA_VERSION,
                    reports,
                    if reports == 1 { "" } else { "s" }
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
