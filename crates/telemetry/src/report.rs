//! The versioned `sweep_report.json` schema: builders, writer, validator.
//!
//! A report file separates what a sweep **computed** from how it was
//! **executed**:
//!
//! * `result` ([`SweepOutcome`]) holds only scheduling-invariant facts —
//!   fault/class tallies and an FNV-1a digest of the merged summaries. Two
//!   runs of the same sweep at different thread or chunk counts must produce
//!   byte-identical `result` subtrees (a differential test enforces this).
//! * `execution` ([`SweepExecution`]) holds everything timing- and
//!   scheduling-dependent: wall clock, merged telemetry, and per-shard
//!   snapshots.
//!
//! Versioning: [`SCHEMA_VERSION`] is bumped when a field is removed, renamed
//! or changes meaning. Adding fields is allowed within a version, so
//! [`validate_report`] checks required fields and types but tolerates unknown
//! members; it rejects any `schema_version` it does not know.

use crate::collector::{CounterKind, HistKind, SpanKind, TelemetrySnapshot};
use crate::json::{self, JsonValue};

/// Current `sweep_report.json` schema version.
///
/// Version history:
/// * **1** — initial schema: `result` + `execution` per report.
/// * **2** — additive: a report may carry a `stream` section
///   ([`StreamInfo`]) describing how its records were delivered
///   incrementally (frame/record tallies, snapshot-cache disposition).
///   Batch reports omit it, so every valid v1 document is also valid v2.
pub const SCHEMA_VERSION: u64 = 2;

/// Schema versions [`validate_report`] accepts. v1 documents contain no
/// `stream` sections but are otherwise identical, so the v2 validator reads
/// them unchanged.
pub const KNOWN_SCHEMA_VERSIONS: [u64; 2] = [1, 2];

/// 64-bit FNV-1a. Used for the `summaries_fnv` digest so reports can assert
/// cross-configuration result identity without embedding every summary.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Scheduling-invariant facts about what a sweep computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Faults in the (possibly capped) universe.
    pub faults: u64,
    /// Equivalence classes after collapsing (== `faults` with collapsing off).
    pub classes: u64,
    /// Classes with exactly one member.
    pub singleton_classes: u64,
    /// Members in the largest class.
    pub largest_class: u64,
    /// Summaries computed exactly.
    pub exact: u64,
    /// Summaries degraded to sampled simulator estimates.
    pub bounded: u64,
    /// Summaries whose feedback-bridge fixpoint left an oscillating wire
    /// (exactly computed, but with residual X at the bridge).
    pub oscillating: u64,
    /// FNV-1a digest over the canonical per-fault summary lines.
    pub summaries_fnv: u64,
}

/// One worker's execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardExecution {
    /// Worker index.
    pub shard: u32,
    /// Whether the worker died in a panic (its claimed work is reported by
    /// the surviving shards' merge).
    pub panicked: bool,
    /// Nanoseconds the worker spent inside class analysis.
    pub busy_nanos: u64,
    /// Everything the worker's collector recorded.
    pub telemetry: TelemetrySnapshot,
}

/// Timing- and scheduling-dependent facts about how a sweep ran.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepExecution {
    /// Worker threads used (1 for a serial sweep).
    pub threads: u32,
    /// Work-stealing chunk size in classes.
    pub chunk: u32,
    /// Whether structural fault collapsing was on.
    pub collapse: bool,
    /// Variable-order strategy the workers built their managers with
    /// (`"identity"`, `"fanin-dfs"`, `"interleave"`, `"auto"`, ...). An
    /// execution fact: results never depend on it, cost always does.
    pub order: String,
    /// Sweep wall-clock nanoseconds, end to end.
    pub wall_nanos: u64,
    /// Merge of every shard's telemetry (plus the sweep-level span).
    pub totals: TelemetrySnapshot,
    /// Per-shard records, in shard order.
    pub shards: Vec<ShardExecution>,
}

/// How a streamed sweep delivered its records (schema v2, additive).
///
/// Batch sweeps omit the section entirely; a server answering a `sweep`
/// request fills it in so clients and CI can assert both the framing (all
/// records delivered, none double-framed) and the cache behaviour (a repeat
/// request must be a `hit`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamInfo {
    /// Frames sent for the request, the terminating `done` frame included
    /// (so `frames == records + 1` when every record travels alone).
    pub frames: u64,
    /// Per-fault records streamed, summed over frames.
    pub records: u64,
    /// Faults whose records were skipped (lost to a class panic).
    pub skipped: u64,
    /// Snapshot-cache disposition for the request: `"hit"` (thawed a cached
    /// snapshot; zero good-function builds) or `"miss"` (built and cached).
    pub cache: String,
}

/// One sweep's report: identity, invariant result, execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Circuit name (e.g. `"c95"`).
    pub circuit: String,
    /// Fault model swept (e.g. `"stuck_at"`, `"bridging"`).
    pub fault_model: String,
    /// What was computed — scheduling-invariant.
    pub result: SweepOutcome,
    /// How it ran — timing-dependent.
    pub execution: SweepExecution,
    /// How records were delivered, when streamed (`None` for batch runs;
    /// the section is then absent from the JSON document).
    pub stream: Option<StreamInfo>,
}

/// A `sweep_report.json` document: versioned envelope around one or more
/// sweep reports (one per circuit × fault model the tool ran).
#[derive(Debug, Clone, PartialEq)]
pub struct ReportFile {
    /// Emitting tool, e.g. `"diffprop"`, `"figures"`, `"bench/parallel_sweep"`.
    pub tool: String,
    /// The sweeps, in execution order.
    pub reports: Vec<SweepReport>,
}

impl ReportFile {
    /// A report file for `tool` with no sweeps yet.
    pub fn new(tool: &str) -> ReportFile {
        ReportFile {
            tool: tool.to_string(),
            reports: Vec::new(),
        }
    }

    /// The document as a JSON value (already schema-valid by construction).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("schema_version", JsonValue::Int(SCHEMA_VERSION as i128)),
            ("tool", JsonValue::Str(self.tool.clone())),
            (
                "reports",
                JsonValue::Arr(self.reports.iter().map(report_to_json).collect()),
            ),
        ])
    }

    /// The serialised document (pretty-printed, trailing newline).
    pub fn to_pretty_string(&self) -> String {
        self.to_json().to_pretty_string()
    }
}

/// One report as a JSON object — the payload a `dp-serve` `done` frame
/// carries, so a client can re-wrap it in a [`ReportFile`] envelope and
/// validate it with the same machinery as an on-disk document.
pub fn report_to_json(r: &SweepReport) -> JsonValue {
    let mut pairs = vec![
        ("circuit", JsonValue::Str(r.circuit.clone())),
        ("fault_model", JsonValue::Str(r.fault_model.clone())),
        ("result", outcome_to_json(&r.result)),
        ("execution", execution_to_json(&r.execution)),
    ];
    if let Some(stream) = &r.stream {
        pairs.push(("stream", stream_to_json(stream)));
    }
    JsonValue::obj(pairs)
}

fn stream_to_json(s: &StreamInfo) -> JsonValue {
    JsonValue::obj(vec![
        ("frames", JsonValue::Int(s.frames as i128)),
        ("records", JsonValue::Int(s.records as i128)),
        ("skipped", JsonValue::Int(s.skipped as i128)),
        ("cache", JsonValue::Str(s.cache.clone())),
    ])
}

fn outcome_to_json(o: &SweepOutcome) -> JsonValue {
    JsonValue::obj(vec![
        ("faults", JsonValue::Int(o.faults as i128)),
        ("classes", JsonValue::Int(o.classes as i128)),
        (
            "singleton_classes",
            JsonValue::Int(o.singleton_classes as i128),
        ),
        ("largest_class", JsonValue::Int(o.largest_class as i128)),
        ("exact", JsonValue::Int(o.exact as i128)),
        ("bounded", JsonValue::Int(o.bounded as i128)),
        ("oscillating", JsonValue::Int(o.oscillating as i128)),
        (
            "summaries_fnv",
            JsonValue::Str(format!("{:016x}", o.summaries_fnv)),
        ),
    ])
}

fn execution_to_json(e: &SweepExecution) -> JsonValue {
    JsonValue::obj(vec![
        ("threads", JsonValue::Int(e.threads as i128)),
        ("chunk", JsonValue::Int(e.chunk as i128)),
        ("collapse", JsonValue::Bool(e.collapse)),
        ("order", JsonValue::Str(e.order.clone())),
        (
            "telemetry_level",
            JsonValue::Str(e.totals.level().name().to_string()),
        ),
        ("wall_nanos", JsonValue::Int(e.wall_nanos as i128)),
        ("totals", snapshot_to_json(&e.totals)),
        (
            "shards",
            JsonValue::Arr(e.shards.iter().map(shard_to_json).collect()),
        ),
    ])
}

fn shard_to_json(s: &ShardExecution) -> JsonValue {
    JsonValue::obj(vec![
        ("shard", JsonValue::Int(s.shard as i128)),
        ("panicked", JsonValue::Bool(s.panicked)),
        ("busy_nanos", JsonValue::Int(s.busy_nanos as i128)),
        ("telemetry", snapshot_to_json(&s.telemetry)),
    ])
}

/// A telemetry snapshot as a JSON object: fixed-order counter map, span
/// aggregates, dense histogram buckets.
pub fn snapshot_to_json(snap: &TelemetrySnapshot) -> JsonValue {
    let counters = CounterKind::ALL
        .iter()
        .map(|&k| (k.name().to_string(), JsonValue::Int(snap.counter(k) as i128)))
        .collect();
    let spans = SpanKind::ALL
        .iter()
        .map(|&k| {
            let s = snap.span(k);
            (
                k.name().to_string(),
                JsonValue::obj(vec![
                    ("count", JsonValue::Int(s.count as i128)),
                    ("total_nanos", JsonValue::Int(s.total_nanos as i128)),
                    ("max_nanos", JsonValue::Int(s.max_nanos as i128)),
                ]),
            )
        })
        .collect();
    let hists = HistKind::ALL
        .iter()
        .map(|&k| {
            (
                k.name().to_string(),
                JsonValue::Arr(
                    snap.hist(k)
                        .dense_buckets()
                        .iter()
                        .map(|&c| JsonValue::Int(c as i128))
                        .collect(),
                ),
            )
        })
        .collect();
    JsonValue::obj(vec![
        ("level", JsonValue::Str(snap.level().name().to_string())),
        ("counters", JsonValue::Obj(counters)),
        ("spans", JsonValue::Obj(spans)),
        ("histograms", JsonValue::Obj(hists)),
    ])
}

/// Validates a parsed document against the current schema. Checks the
/// version and every required field's presence and type; tolerates unknown
/// members (additive evolution is allowed within a version).
pub fn validate_report(doc: &JsonValue) -> Result<(), String> {
    let version = require_u64(doc, "schema_version", "$")?;
    if !KNOWN_SCHEMA_VERSIONS.contains(&version) {
        return Err(format!(
            "unknown schema_version {version} (this validator knows versions {KNOWN_SCHEMA_VERSIONS:?})"
        ));
    }
    require_str(doc, "tool", "$")?;
    let reports = require_arr(doc, "reports", "$")?;
    for (i, report) in reports.iter().enumerate() {
        let at = format!("$.reports[{i}]");
        require_str(report, "circuit", &at)?;
        require_str(report, "fault_model", &at)?;

        let result = require_obj(report, "result", &at)?;
        let rat = format!("{at}.result");
        for field in [
            "faults",
            "classes",
            "singleton_classes",
            "largest_class",
            "exact",
            "bounded",
        ] {
            require_u64(result, field, &rat)?;
        }
        // `oscillating` arrived with the feedback-bridge model (additive
        // within v2): older documents omit it, newer ones must type it.
        if result.get("oscillating").is_some() {
            require_u64(result, "oscillating", &rat)?;
        }
        let fnv = require_str(result, "summaries_fnv", &rat)?;
        if fnv.len() != 16 || !fnv.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("{rat}.summaries_fnv: expected 16 hex digits"));
        }

        let exec = require_obj(report, "execution", &at)?;
        let eat = format!("{at}.execution");
        require_u64(exec, "threads", &eat)?;
        require_u64(exec, "chunk", &eat)?;
        require_bool(exec, "collapse", &eat)?;
        require_str(exec, "order", &eat)?;
        require_level(exec, "telemetry_level", &eat)?;
        require_u64(exec, "wall_nanos", &eat)?;
        let totals = require_obj(exec, "totals", &eat)?;
        validate_snapshot(totals, &format!("{eat}.totals"))?;
        let shards = require_arr(exec, "shards", &eat)?;
        for (j, shard) in shards.iter().enumerate() {
            let sat = format!("{eat}.shards[{j}]");
            require_u64(shard, "shard", &sat)?;
            require_bool(shard, "panicked", &sat)?;
            require_u64(shard, "busy_nanos", &sat)?;
            let tele = require_obj(shard, "telemetry", &sat)?;
            validate_snapshot(tele, &format!("{sat}.telemetry"))?;
        }

        // `stream` is optional (batch reports omit it) but strict when
        // present — and present is legal even in a v1 document, since v1
        // tolerates additive members.
        if report.get("stream").is_some() {
            let stream = require_obj(report, "stream", &at)?;
            let tat = format!("{at}.stream");
            require_u64(stream, "frames", &tat)?;
            require_u64(stream, "records", &tat)?;
            require_u64(stream, "skipped", &tat)?;
            match require_str(stream, "cache", &tat)? {
                "hit" | "miss" => {}
                other => {
                    return Err(format!("{tat}.cache: expected \"hit\" or \"miss\", got {other:?}"))
                }
            }
        }
    }
    Ok(())
}

/// Counters and histograms added within schema v2 (the feedback-bridge
/// model): documents captured before them — e.g. the committed kernel-perf
/// baseline — simply omit the keys, so the validator treats them as
/// optional-but-typed instead of required.
const ADDITIVE_COUNTERS: [CounterKind; 1] = [CounterKind::OscillatingFaults];
const ADDITIVE_HISTS: [HistKind; 1] = [HistKind::FixpointIterations];

fn validate_snapshot(snap: &JsonValue, at: &str) -> Result<(), String> {
    require_level(snap, "level", at)?;
    let counters = require_obj(snap, "counters", at)?;
    for kind in CounterKind::ALL {
        if ADDITIVE_COUNTERS.contains(&kind) && counters.get(kind.name()).is_none() {
            continue;
        }
        require_u64(counters, kind.name(), &format!("{at}.counters"))?;
    }
    let spans = require_obj(snap, "spans", at)?;
    for kind in SpanKind::ALL {
        let span = require_obj(spans, kind.name(), &format!("{at}.spans"))?;
        let pat = format!("{at}.spans.{}", kind.name());
        require_u64(span, "count", &pat)?;
        require_u64(span, "total_nanos", &pat)?;
        require_u64(span, "max_nanos", &pat)?;
    }
    let hists = require_obj(snap, "histograms", at)?;
    for kind in HistKind::ALL {
        if ADDITIVE_HISTS.contains(&kind) && hists.get(kind.name()).is_none() {
            continue;
        }
        let buckets = require_arr(hists, kind.name(), &format!("{at}.histograms"))?;
        for (i, b) in buckets.iter().enumerate() {
            if b.as_u64().is_none() {
                return Err(format!(
                    "{at}.histograms.{}[{i}]: expected a non-negative integer",
                    kind.name()
                ));
            }
        }
    }
    Ok(())
}

fn require<'a>(obj: &'a JsonValue, key: &str, at: &str) -> Result<&'a JsonValue, String> {
    obj.get(key)
        .ok_or_else(|| format!("{at}.{key}: missing required field"))
}

fn require_u64(obj: &JsonValue, key: &str, at: &str) -> Result<u64, String> {
    require(obj, key, at)?
        .as_u64()
        .ok_or_else(|| format!("{at}.{key}: expected a non-negative integer"))
}

fn require_str<'a>(obj: &'a JsonValue, key: &str, at: &str) -> Result<&'a str, String> {
    require(obj, key, at)?
        .as_str()
        .ok_or_else(|| format!("{at}.{key}: expected a string"))
}

fn require_bool(obj: &JsonValue, key: &str, at: &str) -> Result<bool, String> {
    match require(obj, key, at)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(format!("{at}.{key}: expected a boolean")),
    }
}

fn require_level(obj: &JsonValue, key: &str, at: &str) -> Result<(), String> {
    let level = require_str(obj, key, at)?;
    match level {
        "off" | "aggregate" | "detailed" => Ok(()),
        other => Err(format!("{at}.{key}: unknown telemetry level {other:?}")),
    }
}

fn require_arr<'a>(obj: &'a JsonValue, key: &str, at: &str) -> Result<&'a [JsonValue], String> {
    require(obj, key, at)?
        .as_arr()
        .ok_or_else(|| format!("{at}.{key}: expected an array"))
}

fn require_obj<'a>(obj: &'a JsonValue, key: &str, at: &str) -> Result<&'a JsonValue, String> {
    let v = require(obj, key, at)?;
    match v {
        JsonValue::Obj(_) => Ok(v),
        _ => Err(format!("{at}.{key}: expected an object")),
    }
}

/// Every distinct key path in a document, sorted — the shape of the schema
/// with values and array multiplicity erased. The schema-stability golden
/// test snapshots this for a representative report.
pub fn key_paths(doc: &JsonValue) -> Vec<String> {
    let mut paths = Vec::new();
    collect_paths(doc, "$", &mut paths);
    paths.sort();
    paths.dedup();
    paths
}

fn collect_paths(value: &JsonValue, prefix: &str, out: &mut Vec<String>) {
    match value {
        JsonValue::Obj(pairs) => {
            for (k, v) in pairs {
                let path = format!("{prefix}.{k}");
                out.push(path.clone());
                collect_paths(v, &path, out);
            }
        }
        JsonValue::Arr(items) => {
            let path = format!("{prefix}[]");
            for v in items {
                collect_paths(v, &path, out);
            }
        }
        _ => {}
    }
}

/// Parses and validates a serialised report document in one step.
pub fn parse_and_validate(text: &str) -> Result<JsonValue, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    validate_report(&doc)?;
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{Collector, CounterKind, HistKind, SpanKind, TelemetryLevel};

    fn sample_file() -> ReportFile {
        let mut c = Collector::new(TelemetryLevel::Aggregate);
        c.add(CounterKind::UniqueLookups, 123);
        c.count_span(SpanKind::GateProp, 7);
        let t = c.start();
        c.finish(SpanKind::Fault, t);
        c.record_hist(HistKind::ClassSize, 3);
        let snap = c.snapshot();
        ReportFile {
            tool: "test".into(),
            reports: vec![SweepReport {
                circuit: "c95".into(),
                fault_model: "stuck_at".into(),
                result: SweepOutcome {
                    faults: 10,
                    classes: 8,
                    singleton_classes: 6,
                    largest_class: 2,
                    exact: 10,
                    bounded: 0,
                    oscillating: 0,
                    summaries_fnv: fnv1a64(b"example"),
                },
                execution: SweepExecution {
                    threads: 2,
                    chunk: 4,
                    collapse: true,
                    order: "identity".into(),
                    wall_nanos: 1_000,
                    totals: snap.clone(),
                    shards: vec![ShardExecution {
                        shard: 0,
                        panicked: false,
                        busy_nanos: 900,
                        telemetry: snap,
                    }],
                },
                stream: None,
            }],
        }
    }

    #[test]
    fn emitted_reports_validate_and_round_trip() {
        let text = sample_file().to_pretty_string();
        let doc = parse_and_validate(&text).expect("emitted report must be schema-valid");
        assert_eq!(doc.get("tool").and_then(|v| v.as_str()), Some("test"));
    }

    #[test]
    fn validator_rejects_unknown_version() {
        let mut file = sample_file().to_json();
        if let JsonValue::Obj(pairs) = &mut file {
            pairs[0].1 = JsonValue::Int((SCHEMA_VERSION + 1) as i128);
        }
        let err = validate_report(&file).unwrap_err();
        assert!(err.contains("unknown schema_version"), "{err}");
    }

    #[test]
    fn validator_accepts_every_known_version() {
        // v1 documents are identical minus the optional stream section; the
        // v2 validator must keep reading them.
        for version in KNOWN_SCHEMA_VERSIONS {
            let mut file = sample_file().to_json();
            if let JsonValue::Obj(pairs) = &mut file {
                pairs[0].1 = JsonValue::Int(version as i128);
            }
            validate_report(&file).unwrap_or_else(|e| panic!("version {version}: {e}"));
        }
    }

    #[test]
    fn stream_section_round_trips_and_is_strict() {
        let mut file = sample_file();
        file.reports[0].stream = Some(StreamInfo {
            frames: 5,
            records: 10,
            skipped: 0,
            cache: "hit".into(),
        });
        let text = file.to_pretty_string();
        assert!(text.contains("\"stream\""));
        parse_and_validate(&text).expect("streamed report must validate");
        // A cache disposition outside {hit, miss} is a framing bug.
        let bad = text.replace("\"hit\"", "\"warm\"");
        let err = parse_and_validate(&bad).unwrap_err();
        assert!(err.contains("stream.cache"), "{err}");
        // Batch reports omit the section and still validate (see
        // emitted_reports_validate_and_round_trip), and omission keeps the
        // key-path shape of v1 documents unchanged.
        let batch_paths = key_paths(&sample_file().to_json());
        assert!(!batch_paths.iter().any(|p| p.contains("stream")));
    }

    #[test]
    fn validator_rejects_missing_counter() {
        let text = sample_file()
            .to_pretty_string()
            .replace("\"unique_lookups\"", "\"unique_lookupz\"");
        let err = parse_and_validate(&text).unwrap_err();
        assert!(err.contains("unique_lookups"), "{err}");
    }

    #[test]
    fn validator_tolerates_additive_fields() {
        let mut file = sample_file().to_json();
        if let JsonValue::Obj(pairs) = &mut file {
            pairs.push(("future_field".into(), JsonValue::Int(1)));
        }
        validate_report(&file).expect("additive fields are allowed within a version");
    }

    #[test]
    fn fnv_digest_is_the_reference_function() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn key_paths_cover_nested_structure() {
        let paths = key_paths(&sample_file().to_json());
        assert!(paths.contains(&"$.reports[].result.summaries_fnv".to_string()));
        assert!(paths
            .contains(&"$.reports[].execution.shards[].telemetry.counters.gc_runs".to_string()));
    }
}
