//! The in-process collector: span aggregates, counters, and histograms.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// How much a sweep records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryLevel {
    /// No collector attached; every recording call is a no-op. Exists for
    /// ablations and for the observation-only property tests — production
    /// sweeps have no reason to turn telemetry off.
    Off,
    /// The always-on default: sweep/chunk/class/fault spans are timed,
    /// gate-propagation spans are *counted* but not timed (they are the only
    /// per-gate hot path).
    #[default]
    Aggregate,
    /// Additionally times every gate-propagation span. Costs two
    /// `Instant::now()` calls per gate delta — for profiling runs, not for
    /// recorded experiments.
    Detailed,
}

impl TelemetryLevel {
    /// Stable lower-case name, as serialised in `sweep_report.json`.
    pub fn name(self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Aggregate => "aggregate",
            TelemetryLevel::Detailed => "detailed",
        }
    }
}

/// The span hierarchy of a sweep, outermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One `sweep_universe` call end to end (recorded by the merge step).
    Sweep,
    /// One chunk claimed from the work-stealing queue.
    Chunk,
    /// One equivalence class: representative analysis plus member expansion.
    Class,
    /// One fault-level unit: the representative's exact analysis, or one
    /// member's sampled estimate on the fallback path.
    Fault,
    /// One gate delta computed inside the engine's propagation loop.
    /// Counted at [`TelemetryLevel::Aggregate`], timed at
    /// [`TelemetryLevel::Detailed`].
    GateProp,
}

impl SpanKind {
    /// Number of span kinds (array dimension).
    pub const COUNT: usize = 5;
    /// All kinds, outermost first — also the serialisation order.
    pub const ALL: [SpanKind; SpanKind::COUNT] = [
        SpanKind::Sweep,
        SpanKind::Chunk,
        SpanKind::Class,
        SpanKind::Fault,
        SpanKind::GateProp,
    ];

    /// Stable snake_case name, as serialised in `sweep_report.json`.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Sweep => "sweep",
            SpanKind::Chunk => "chunk",
            SpanKind::Class => "class",
            SpanKind::Fault => "fault",
            SpanKind::GateProp => "gate_propagation",
        }
    }

    fn index(self) -> usize {
        match self {
            SpanKind::Sweep => 0,
            SpanKind::Chunk => 1,
            SpanKind::Class => 2,
            SpanKind::Fault => 3,
            SpanKind::GateProp => 4,
        }
    }
}

/// Aggregate over every finished span of one kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Spans finished (or counted, for untimed gate spans).
    pub count: u64,
    /// Total wall-clock nanoseconds across timed spans.
    pub total_nanos: u64,
    /// The single longest timed span.
    pub max_nanos: u64,
}

impl SpanStats {
    /// Component-wise aggregate (`max_nanos` takes the max).
    pub fn merged(self, other: SpanStats) -> SpanStats {
        SpanStats {
            count: self.count + other.count,
            total_nanos: self.total_nanos + other.total_nanos,
            max_nanos: self.max_nanos.max(other.max_nanos),
        }
    }
}

/// The fixed counter vocabulary of a sweep.
///
/// Most counters are filled from [`ManagerStats`](../dp_bdd) snapshots at
/// worker exit; the rest (`SimFallbacks`, the work-queue counters) are
/// bumped by the sweep itself. All counters sum across shards except
/// `PeakNodes`/`LiveNodes`, which take the per-shard max on merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// Unique-table (hash-consing) probes, cumulative per manager.
    UniqueLookups,
    /// Unique-table probes that found an existing node.
    UniqueHits,
    /// Probes resolved against a shared frozen base table (delta managers
    /// only; zero for private managers).
    UniqueBaseHits,
    /// Probes that fell through to the private delta table (lookups =
    /// base hits + delta lookups for every manager).
    UniqueDeltaLookups,
    /// Op-cache probes, *cumulative across GC generations*.
    OpCacheLookups,
    /// Op-cache probes that hit, cumulative across GC generations.
    OpCacheHits,
    /// Memoised operation steps charged by the manager, cumulative.
    OpSteps,
    /// Completed garbage collections.
    GcRuns,
    /// Largest node table ever held (max on merge).
    PeakNodes,
    /// Node-table size at the end of the worker's run (max on merge).
    LiveNodes,
    /// Budget windows that tripped.
    BudgetTrips,
    /// Fault summaries degraded to sampled simulator estimates.
    SimFallbacks,
    /// Gate deltas computed by the propagation loop.
    GatesPropagated,
    /// Chunks claimed from the work-stealing queue.
    ChunksClaimed,
    /// Equivalence classes analysed.
    ClassesAnalyzed,
    /// Fault summaries produced.
    FaultsSummarized,
    /// Mid-sweep dynamic reorderings (`sift`) the engine triggered.
    SiftRuns,
    /// Live nodes reclaimed by those sifts (size before minus size after,
    /// summed over runs).
    SiftNodesReclaimed,
    /// Feedback-bridge analyses whose bridged wire never settled: the
    /// ternary fixpoint left residual X on some input vectors.
    OscillatingFaults,
}

impl CounterKind {
    /// Number of counters (array dimension).
    pub const COUNT: usize = 19;
    /// All counters, in serialisation order.
    pub const ALL: [CounterKind; CounterKind::COUNT] = [
        CounterKind::UniqueLookups,
        CounterKind::UniqueHits,
        CounterKind::UniqueBaseHits,
        CounterKind::UniqueDeltaLookups,
        CounterKind::OpCacheLookups,
        CounterKind::OpCacheHits,
        CounterKind::OpSteps,
        CounterKind::GcRuns,
        CounterKind::PeakNodes,
        CounterKind::LiveNodes,
        CounterKind::BudgetTrips,
        CounterKind::SimFallbacks,
        CounterKind::GatesPropagated,
        CounterKind::ChunksClaimed,
        CounterKind::ClassesAnalyzed,
        CounterKind::FaultsSummarized,
        CounterKind::SiftRuns,
        CounterKind::SiftNodesReclaimed,
        CounterKind::OscillatingFaults,
    ];

    /// Stable snake_case name, as serialised in `sweep_report.json`.
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::UniqueLookups => "unique_lookups",
            CounterKind::UniqueHits => "unique_hits",
            CounterKind::UniqueBaseHits => "unique_base_hits",
            CounterKind::UniqueDeltaLookups => "unique_delta_lookups",
            CounterKind::OpCacheLookups => "op_cache_lookups",
            CounterKind::OpCacheHits => "op_cache_hits",
            CounterKind::OpSteps => "op_steps",
            CounterKind::GcRuns => "gc_runs",
            CounterKind::PeakNodes => "peak_nodes",
            CounterKind::LiveNodes => "live_nodes",
            CounterKind::BudgetTrips => "budget_trips",
            CounterKind::SimFallbacks => "sim_fallbacks",
            CounterKind::GatesPropagated => "gates_propagated",
            CounterKind::ChunksClaimed => "chunks_claimed",
            CounterKind::ClassesAnalyzed => "classes_analyzed",
            CounterKind::FaultsSummarized => "faults_summarized",
            CounterKind::SiftRuns => "sift_runs",
            CounterKind::SiftNodesReclaimed => "sift_nodes_reclaimed",
            CounterKind::OscillatingFaults => "oscillating_faults",
        }
    }

    /// `true` for gauges that take the max (not the sum) on merge.
    pub fn merges_by_max(self) -> bool {
        matches!(self, CounterKind::PeakNodes | CounterKind::LiveNodes)
    }

    fn index(self) -> usize {
        CounterKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("CounterKind::ALL is exhaustive")
    }
}

/// The histograms a sweep maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// Wall-clock nanoseconds per fault-level span.
    FaultNanos,
    /// Members per analysed equivalence class.
    ClassSize,
    /// Classes per work-queue batch (1 for every unpackable or unbatched
    /// class; > 1 only for fused cone-disjoint stuck-at batches).
    BatchSize,
    /// Ternary fixpoint iterations per feedback-bridge analysis (the
    /// number of loop evaluations before the wired value stabilised).
    FixpointIterations,
}

impl HistKind {
    /// Number of histograms (array dimension).
    pub const COUNT: usize = 4;
    /// All histograms, in serialisation order.
    pub const ALL: [HistKind; HistKind::COUNT] = [
        HistKind::FaultNanos,
        HistKind::ClassSize,
        HistKind::BatchSize,
        HistKind::FixpointIterations,
    ];

    /// Stable snake_case name, as serialised in `sweep_report.json`.
    pub fn name(self) -> &'static str {
        match self {
            HistKind::FaultNanos => "fault_nanos",
            HistKind::ClassSize => "class_size",
            HistKind::BatchSize => "batch_size",
            HistKind::FixpointIterations => "fixpoint_iterations",
        }
    }

    fn index(self) -> usize {
        match self {
            HistKind::FaultNanos => 0,
            HistKind::ClassSize => 1,
            HistKind::BatchSize => 2,
            HistKind::FixpointIterations => 3,
        }
    }
}

/// A power-of-two histogram: bucket `i` counts values whose bit length is
/// `i` (bucket 0 holds zeros, bucket 1 holds ones, bucket `i` holds
/// `2^(i-1) ..= 2^i - 1`). 65 buckets cover the whole `u64` range, so
/// recording never saturates or clips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 65],
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram { buckets: [0; 65] }
    }
}

impl LogHistogram {
    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[(64 - value.leading_zeros()) as usize] += 1;
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The buckets, trimmed of trailing zeros (the serialised form).
    pub fn dense_buckets(&self) -> &[u64] {
        let last = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        &self.buckets[..last]
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &LogHistogram) -> LogHistogram {
        let mut out = self.clone();
        for (a, b) in out.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        out
    }
}

/// A started span: the token handed back by [`Collector::start`] and
/// consumed by [`Collector::finish`]. `None` when the collector is off (or
/// the span kind is untimed at the current level), so disabled telemetry
/// never reads the clock.
pub type SpanTimer = Option<Instant>;

/// Plain-data copy of a collector's state: everything recorded, nothing
/// borrowed. Snapshots survive the worker (and thread) that produced them
/// and merge component-wise into sweep-level views.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    level: TelemetryLevel,
    spans: [SpanStats; SpanKind::COUNT],
    counters: [u64; CounterKind::COUNT],
    hists: [LogHistogram; HistKind::COUNT],
}

impl TelemetrySnapshot {
    /// The level the producing collector ran at.
    pub fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// Aggregate for one span kind.
    pub fn span(&self, kind: SpanKind) -> SpanStats {
        self.spans[kind.index()]
    }

    /// One counter's value.
    pub fn counter(&self, kind: CounterKind) -> u64 {
        self.counters[kind.index()]
    }

    /// One histogram.
    pub fn hist(&self, kind: HistKind) -> &LogHistogram {
        &self.hists[kind.index()]
    }

    /// Component-wise aggregate of two snapshots: spans and histograms sum,
    /// counters sum except the [`CounterKind::merges_by_max`] gauges, the
    /// level takes the more detailed of the two.
    pub fn merged(&self, other: &TelemetrySnapshot) -> TelemetrySnapshot {
        let mut out = self.clone();
        for (a, b) in out.spans.iter_mut().zip(other.spans.iter()) {
            *a = a.merged(*b);
        }
        for kind in CounterKind::ALL {
            let i = kind.index();
            out.counters[i] = if kind.merges_by_max() {
                out.counters[i].max(other.counters[i])
            } else {
                out.counters[i] + other.counters[i]
            };
        }
        for (a, b) in out.hists.iter_mut().zip(other.hists.iter()) {
            *a = a.merged(b);
        }
        out.level = match (self.level, other.level) {
            (TelemetryLevel::Detailed, _) | (_, TelemetryLevel::Detailed) => {
                TelemetryLevel::Detailed
            }
            (TelemetryLevel::Aggregate, _) | (_, TelemetryLevel::Aggregate) => {
                TelemetryLevel::Aggregate
            }
            _ => TelemetryLevel::Off,
        };
        out
    }
}

/// The per-worker event sink. One collector per sweep worker (plus one on
/// the merging thread for the sweep span); snapshots are merged afterwards,
/// so no synchronisation is ever needed on the hot path.
#[derive(Debug, Default)]
pub struct Collector {
    state: TelemetrySnapshot,
}

/// A collector shared between a sweep worker and the engine it drives
/// (single-threaded interior mutability; workers never share collectors).
pub type SharedCollector = Rc<RefCell<Collector>>;

impl Collector {
    /// A collector recording at `level`.
    pub fn new(level: TelemetryLevel) -> Collector {
        Collector {
            state: TelemetrySnapshot {
                level,
                ..Default::default()
            },
        }
    }

    /// A shareable collector for threading through an engine.
    pub fn shared(level: TelemetryLevel) -> SharedCollector {
        Rc::new(RefCell::new(Collector::new(level)))
    }

    /// The recording level.
    pub fn level(&self) -> TelemetryLevel {
        self.state.level
    }

    /// `false` when every recording call is a no-op.
    pub fn enabled(&self) -> bool {
        self.state.level != TelemetryLevel::Off
    }

    /// `true` when gate-propagation spans are timed, not just counted.
    pub fn detailed(&self) -> bool {
        self.state.level == TelemetryLevel::Detailed
    }

    /// Starts a timed span. Reads the clock only when enabled.
    pub fn start(&self) -> SpanTimer {
        self.enabled().then(Instant::now)
    }

    /// Finishes a timed span started by [`Collector::start`].
    pub fn finish(&mut self, kind: SpanKind, timer: SpanTimer) {
        let Some(t0) = timer else { return };
        let nanos = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let s = &mut self.state.spans[kind.index()];
        s.count += 1;
        s.total_nanos += nanos;
        s.max_nanos = s.max_nanos.max(nanos);
        #[cfg(feature = "trace-log")]
        eprintln!("[dp-telemetry] span {} {}ns", kind.name(), nanos);
        if kind == SpanKind::Fault {
            self.record_hist(HistKind::FaultNanos, nanos);
        }
    }

    /// Counts a span occurrence without timing it (the aggregate-level
    /// treatment of gate-propagation spans).
    pub fn count_span(&mut self, kind: SpanKind, occurrences: u64) {
        if self.enabled() {
            self.state.spans[kind.index()].count += occurrences;
        }
    }

    /// Adds to a counter.
    pub fn add(&mut self, kind: CounterKind, value: u64) {
        if self.enabled() {
            self.state.counters[kind.index()] += value;
        }
    }

    /// Raises a gauge counter to at least `value` (for `PeakNodes`-style
    /// high-water marks).
    pub fn raise(&mut self, kind: CounterKind, value: u64) {
        if self.enabled() {
            let c = &mut self.state.counters[kind.index()];
            *c = (*c).max(value);
        }
    }

    /// Records a histogram value.
    pub fn record_hist(&mut self, kind: HistKind, value: u64) {
        if self.enabled() {
            self.state.hists[kind.index()].record(value);
        }
    }

    /// Plain-data copy of everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.state.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_collector_records_nothing() {
        let mut c = Collector::new(TelemetryLevel::Off);
        assert!(c.start().is_none());
        c.add(CounterKind::GcRuns, 5);
        c.count_span(SpanKind::GateProp, 9);
        c.record_hist(HistKind::ClassSize, 3);
        let s = c.snapshot();
        assert_eq!(s.counter(CounterKind::GcRuns), 0);
        assert_eq!(s.span(SpanKind::GateProp).count, 0);
        assert_eq!(s.hist(HistKind::ClassSize).total(), 0);
    }

    #[test]
    fn finished_spans_aggregate() {
        let mut c = Collector::new(TelemetryLevel::Aggregate);
        for _ in 0..3 {
            let t = c.start();
            assert!(t.is_some());
            c.finish(SpanKind::Class, t);
        }
        let s = c.snapshot();
        assert_eq!(s.span(SpanKind::Class).count, 3);
        assert!(s.span(SpanKind::Class).max_nanos <= s.span(SpanKind::Class).total_nanos);
        // A fault span also lands in the latency histogram.
        let t = c.start();
        c.finish(SpanKind::Fault, t);
        assert_eq!(c.snapshot().hist(HistKind::FaultNanos).total(), 1);
    }

    #[test]
    fn log_histogram_buckets_by_bit_length() {
        let mut h = LogHistogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(u64::MAX); // bucket 64
        assert_eq!(h.total(), 5);
        let dense = h.dense_buckets();
        assert_eq!(dense.len(), 65);
        assert_eq!(dense[0], 1);
        assert_eq!(dense[1], 1);
        assert_eq!(dense[2], 2);
        assert_eq!(dense[64], 1);
    }

    #[test]
    fn merged_sums_and_maxes() {
        let mut a = Collector::new(TelemetryLevel::Aggregate);
        let mut b = Collector::new(TelemetryLevel::Detailed);
        a.add(CounterKind::UniqueLookups, 10);
        b.add(CounterKind::UniqueLookups, 5);
        a.raise(CounterKind::PeakNodes, 100);
        b.raise(CounterKind::PeakNodes, 300);
        a.count_span(SpanKind::GateProp, 2);
        b.count_span(SpanKind::GateProp, 3);
        a.record_hist(HistKind::ClassSize, 4);
        b.record_hist(HistKind::ClassSize, 4);
        let m = a.snapshot().merged(&b.snapshot());
        assert_eq!(m.counter(CounterKind::UniqueLookups), 15);
        assert_eq!(m.counter(CounterKind::PeakNodes), 300);
        assert_eq!(m.span(SpanKind::GateProp).count, 5);
        assert_eq!(m.hist(HistKind::ClassSize).total(), 2);
        assert_eq!(m.level(), TelemetryLevel::Detailed);
    }

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<&str> = CounterKind::ALL.iter().map(|k| k.name()).collect();
        names.extend(SpanKind::ALL.iter().map(|k| k.name()));
        names.extend(HistKind::ALL.iter().map(|k| k.name()));
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate telemetry name");
    }
}
