//! End-to-end tests against a real in-process server on a loopback port:
//! golden stream/batch identity, snapshot-cache reuse (the zero-rebuild
//! acceptance criterion), concurrency, and protocol error handling.

use std::sync::Arc;
use std::thread;

use dp_analysis::stuck_at_universe;
use dp_core::{
    summary_line, sweep_universe, sweep_universe_ext, DiffProp, EngineConfig, OrderStrategy,
    Parallelism, SweepConfig,
};
use dp_netlist::generators;
use dp_serve::{CircuitSpec, Client, PointParams, Server, ServerConfig, SweepParams, WireSummary};
use dp_telemetry::json::JsonValue;

/// Starts a server on an OS-assigned loopback port; the returned guard
/// shuts it down (and joins the accept loop) on drop.
struct TestServer {
    addr: std::net::SocketAddr,
    handle: Option<thread::JoinHandle<()>>,
}

impl TestServer {
    fn start() -> TestServer {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let addr = server.local_addr();
        let handle = thread::spawn(move || server.run().expect("serve"));
        TestServer {
            addr,
            handle: Some(handle),
        }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr).expect("connect")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Ok(mut c) = Client::connect(self.addr) {
            let _ = c.shutdown();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The batch TSV for the full collapsed stuck-at universe of a builtin.
fn batch_tsv(name: &str, threads: usize) -> (Vec<String>, dp_core::SweepResult) {
    let circuit = match name {
        "c17" => generators::c17(),
        "c95" => generators::c95(),
        other => panic!("unexpected circuit {other}"),
    };
    let faults = stuck_at_universe(&circuit, true);
    let sweep = sweep_universe(
        &circuit,
        &faults,
        &SweepConfig {
            parallelism: if threads <= 1 {
                Parallelism::Serial
            } else {
                Parallelism::Threads(threads)
            },
            ..Default::default()
        },
    );
    let lines = sweep
        .summaries
        .iter()
        .enumerate()
        .map(|(i, s)| summary_line(i, s))
        .collect();
    (lines, sweep)
}

fn sweep_lines(client: &mut Client, name: &str, threads: usize) -> (Vec<String>, dp_serve::SweepOutcome) {
    let mut lines = Vec::new();
    let outcome = client
        .sweep(
            CircuitSpec::Builtin(name.into()),
            SweepParams {
                threads,
                ..Default::default()
            },
            |_, line| lines.push(line.to_string()),
        )
        .expect("sweep");
    (lines, outcome)
}

#[test]
fn streamed_sweep_is_byte_identical_to_batch_at_1_and_4_threads() {
    let server = TestServer::start();
    let (golden, _) = batch_tsv("c95", 1);
    for threads in [1usize, 4] {
        let mut client = server.client();
        let (lines, outcome) = sweep_lines(&mut client, "c95", threads);
        assert_eq!(
            lines.join("\n"),
            golden.join("\n"),
            "streamed concatenation must reproduce the batch TSV at {threads} thread(s)"
        );
        assert_eq!(outcome.records as usize, golden.len());
        assert_eq!(outcome.skipped, 0);
    }
}

#[test]
fn repeat_sweep_hits_the_cache_and_performs_zero_good_function_builds() {
    let server = TestServer::start();
    let mut client = server.client();
    let (_, first) = sweep_lines(&mut client, "c95", 1);
    assert_eq!(first.cache, "miss", "first request admits the snapshot");
    let (_, second) = sweep_lines(&mut client, "c95", 1);
    assert_eq!(second.cache, "hit", "repeat request reuses it");

    // Thaw-only baseline: a local warm sweep over an identical snapshot.
    // At one worker the claim order is deterministic, so the server's
    // second request must match this exactly — the 1.05× acceptance bound
    // is slack it does not need.
    let circuit = generators::c95();
    let faults = stuck_at_universe(&circuit, true);
    let snapshot =
        DiffProp::build_snapshot(&circuit, EngineConfig::default()).expect("unbudgeted build");
    let warm = sweep_universe_ext(
        &circuit,
        &faults,
        &SweepConfig::default(),
        Some(&snapshot),
        None,
    );
    let baseline = warm.merged_stats().unique.lookups;
    assert!(baseline > 0);
    assert!(
        second.unique_lookups as f64 <= 1.05 * baseline as f64,
        "cache-hit sweep must be thaw-only: {} lookups vs {} baseline",
        second.unique_lookups,
        baseline
    );
    // Both server requests ran warm (the miss built its snapshot at cache
    // admission, outside the sweep), so their counters agree too.
    assert_eq!(first.unique_lookups, second.unique_lookups);
    assert_eq!(second.unique_lookups, baseline);

    let status = client.status().expect("status");
    assert_eq!(status.entries, 1);
    assert_eq!(status.misses, 1, "one admission");
    assert!(status.hits >= 1);
    assert_eq!(status.evictions, 0);
}

#[test]
fn concurrent_sweeps_against_one_cached_snapshot_stay_golden() {
    let server = TestServer::start();
    // Warm the cache once so both concurrent requests hit the same entry.
    let (_, warmup) = sweep_lines(&mut server.client(), "c95", 1);
    assert_eq!(warmup.cache, "miss");
    let (golden, _) = batch_tsv("c95", 1);
    let golden = Arc::new(golden);
    let results: Vec<_> = (0..3)
        .map(|_| {
            let addr = server.addr;
            let golden = Arc::clone(&golden);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut lines = Vec::new();
                let outcome = client
                    .sweep(
                        CircuitSpec::Builtin("c95".into()),
                        SweepParams {
                            threads: 2,
                            ..Default::default()
                        },
                        |_, line| lines.push(line.to_string()),
                    )
                    .expect("sweep");
                assert_eq!(outcome.cache, "hit", "all concurrent requests reuse the entry");
                assert_eq!(lines.join("\n"), golden.join("\n"));
            })
        })
        .collect();
    for r in results {
        r.join().expect("concurrent sweep");
    }
}

#[test]
fn record_order_is_strictly_ascending_and_indices_match() {
    let server = TestServer::start();
    let mut client = server.client();
    let mut indices = Vec::new();
    client
        .sweep(
            CircuitSpec::Builtin("c17".into()),
            SweepParams {
                threads: 3,
                ..Default::default()
            },
            |i, line| {
                indices.push(i);
                let wire = WireSummary::parse(line).expect("wire line");
                assert_eq!(wire.index, i, "frame index matches the line's own index");
            },
        )
        .expect("sweep");
    assert!(!indices.is_empty());
    assert!(
        indices.windows(2).all(|w| w[0] < w[1]),
        "streamed records arrive in strict input order"
    );
}

#[test]
fn done_report_is_schema_valid_and_carries_the_stream_section() {
    let server = TestServer::start();
    let mut client = server.client();
    let (lines, outcome) = sweep_lines(&mut client, "c17", 2);
    let doc = outcome.report_document().to_pretty_string();
    let parsed = dp_telemetry::parse_and_validate(&doc).expect("schema-valid streamed report");
    let stream = parsed.get("reports").and_then(JsonValue::as_arr).unwrap()[0]
        .get("stream")
        .expect("stream section present");
    assert_eq!(
        stream.get("records").and_then(JsonValue::as_u64),
        Some(lines.len() as u64)
    );
    assert_eq!(
        stream.get("frames").and_then(JsonValue::as_u64),
        Some(lines.len() as u64 + 1),
        "frames = records + the done frame"
    );
    assert_eq!(stream.get("cache").and_then(JsonValue::as_str), Some("miss"));
    assert!(outcome.classes() > 0);
    assert_eq!(outcome.workers(), 2);
}

#[test]
fn point_queries_agree_with_a_local_engine() {
    let server = TestServer::start();
    let mut client = server.client();
    let circuit = generators::c17();
    let faults = stuck_at_universe(&circuit, true);
    // Pick a net-site fault so the query can address it by net name.
    let (net, value) = faults
        .iter()
        .find_map(|f| match f {
            dp_faults::Fault::StuckAt(s) => match s.site {
                dp_faults::FaultSite::Net(n) => Some((n, s.value)),
                _ => None,
            },
            _ => None,
        })
        .expect("a net-site fault");
    let fault = dp_faults::Fault::StuckAt(dp_faults::StuckAtFault {
        site: dp_faults::FaultSite::Net(net),
        value,
    });
    let mut dp = DiffProp::new(&circuit);
    let local = dp.analyze(&fault);
    let bound = dp.detectability_bound(&fault);
    let adherence = bound.and_then(|u| (u > 0.0).then(|| local.detectability / u));

    let point = PointParams {
        order: OrderStrategy::Identity,
        budget: dp_core::BudgetConfig::UNLIMITED,
        net: circuit.net_name(net).to_string(),
        stuck_at: value,
    };
    for cmd_adherence in [false, true] {
        let v = client
            .point(
                cmd_adherence,
                CircuitSpec::Builtin("c17".into()),
                point.clone(),
            )
            .expect("point query");
        let bits = v
            .get("detectability_bits")
            .and_then(JsonValue::as_str)
            .expect("bits field");
        assert_eq!(
            u64::from_str_radix(bits, 16).unwrap(),
            local.detectability.to_bits(),
            "exact detectability over the wire"
        );
        assert_eq!(
            v.get("test_count").and_then(JsonValue::as_str),
            local.test_count.map(|c| c.to_string()).as_deref()
        );
        let wire_adh = v.get("adherence_bits").and_then(JsonValue::as_str);
        assert_eq!(
            wire_adh.map(|s| u64::from_str_radix(s, 16).unwrap()),
            adherence.map(f64::to_bits),
            "exact adherence over the wire"
        );
    }
    // The two point queries shared one snapshot admission.
    let status = client.status().expect("status");
    assert_eq!(status.misses, 1);
    assert_eq!(status.hits, 1);
}

#[test]
fn request_errors_keep_the_connection_usable() {
    let server = TestServer::start();
    let mut client = server.client();
    let bad = client.sweep(
        CircuitSpec::Builtin("c9999".into()),
        SweepParams::default(),
        |_, _| {},
    );
    assert!(bad.is_err(), "unknown builtin is a request error");
    let bad_net = client.point(
        false,
        CircuitSpec::Builtin("c17".into()),
        PointParams {
            order: OrderStrategy::Identity,
            budget: dp_core::BudgetConfig::UNLIMITED,
            net: "no_such_net".into(),
            stuck_at: false,
        },
    );
    assert!(bad_net.is_err(), "unknown net is a request error");
    // Same connection still answers real requests afterwards.
    let (lines, outcome) = sweep_lines(&mut client, "c17", 1);
    assert!(!lines.is_empty());
    assert_eq!(outcome.skipped, 0);
}
