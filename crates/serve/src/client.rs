//! A blocking client for the `dp-serve` protocol: one connection, many
//! requests, frames surfaced as they arrive.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use dp_telemetry::json::JsonValue;

use crate::protocol::{CacheStatus, CircuitSpec, Frame, PointParams, Request, SweepParams};

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// What a finished sweep request reports back, beyond the streamed records.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// `"hit"` or `"miss"` — the server's snapshot-cache disposition.
    pub cache: String,
    /// The sweep's merged unique-table probes (thaw-only on a `hit`).
    pub unique_lookups: u64,
    /// Probes resolved by the frozen snapshot base.
    pub base_hits: u64,
    /// Per-fault records streamed.
    pub records: u64,
    /// Faults lost to class panics (absent from the stream).
    pub skipped: u64,
    /// The schema-v2 report object (`stream` section included), ready to
    /// wrap in a `reports` array for `validate_sweep_report`.
    pub report: JsonValue,
}

impl SweepOutcome {
    /// Equivalence classes analysed, from the report's invariant section.
    pub fn classes(&self) -> u64 {
        self.report
            .get("result")
            .and_then(|r| r.get("classes"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
    }

    /// Workers the server used, from the report's execution section.
    pub fn workers(&self) -> u64 {
        self.report
            .get("execution")
            .and_then(|e| e.get("shards"))
            .and_then(JsonValue::as_arr)
            .map(|s| s.len() as u64)
            .unwrap_or(0)
    }

    /// Wraps the report object in a schema-versioned document, as
    /// `validate_sweep_report` and the CI smoke job expect on disk.
    pub fn report_document(&self) -> JsonValue {
        JsonValue::obj(vec![
            (
                "schema_version",
                JsonValue::Int(dp_telemetry::SCHEMA_VERSION as i128),
            ),
            ("tool", JsonValue::Str("dp-serve".into())),
            ("reports", JsonValue::Arr(vec![self.report.clone()])),
        ])
    }
}

/// A connected client. Requests run strictly in sequence on the one
/// connection; open a second client for concurrency.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn request(&mut self, request: &Request) -> io::Result<()> {
        writeln!(self.writer, "{}", request.to_line())?;
        self.writer.flush()
    }

    fn next_frame(&mut self) -> io::Result<Frame> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(proto_err("server closed the connection mid-response"));
        }
        Frame::from_line(line.trim_end_matches(['\r', '\n']))
            .map_err(|e| proto_err(e.to_string()))
    }

    /// Runs a streamed sweep, invoking `on_record` for every record frame
    /// in input-fault order as it arrives.
    pub fn sweep(
        &mut self,
        circuit: CircuitSpec,
        params: SweepParams,
        mut on_record: impl FnMut(usize, &str),
    ) -> io::Result<SweepOutcome> {
        self.request(&Request::Sweep { circuit, params })?;
        let mut records: u64 = 0;
        loop {
            match self.next_frame()? {
                Frame::Record { index, line } => {
                    on_record(index, &line);
                    records += 1;
                }
                Frame::Done {
                    cache,
                    unique_lookups,
                    base_hits,
                    report,
                } => {
                    let skipped = report
                        .get("stream")
                        .and_then(|s| s.get("skipped"))
                        .and_then(JsonValue::as_u64)
                        .unwrap_or(0);
                    return Ok(SweepOutcome {
                        cache,
                        unique_lookups,
                        base_hits,
                        records,
                        skipped,
                        report,
                    });
                }
                Frame::Error { message } => return Err(proto_err(message)),
                other => return Err(proto_err(format!("unexpected frame {other:?}"))),
            }
        }
    }

    /// Runs a single-fault point query (`detectability` or `adherence`)
    /// and returns the value object.
    pub fn point(
        &mut self,
        adherence: bool,
        circuit: CircuitSpec,
        point: PointParams,
    ) -> io::Result<JsonValue> {
        self.request(&if adherence {
            Request::Adherence { circuit, point }
        } else {
            Request::Detectability { circuit, point }
        })?;
        match self.next_frame()? {
            Frame::Value(fields) => Ok(fields),
            Frame::Error { message } => Err(proto_err(message)),
            other => Err(proto_err(format!("unexpected frame {other:?}"))),
        }
    }

    /// Fetches the snapshot-cache counters.
    pub fn status(&mut self) -> io::Result<CacheStatus> {
        self.request(&Request::Status)?;
        match self.next_frame()? {
            Frame::Status(status) => Ok(status),
            Frame::Error { message } => Err(proto_err(message)),
            other => Err(proto_err(format!("unexpected frame {other:?}"))),
        }
    }

    /// Asks the server to stop; returns once it acknowledges.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.request(&Request::Shutdown)?;
        match self.next_frame()? {
            Frame::Bye => Ok(()),
            Frame::Error { message } => Err(proto_err(message)),
            other => Err(proto_err(format!("unexpected frame {other:?}"))),
        }
    }
}
