//! The snapshot cache behind `dp-serve`: compiled circuits and frozen
//! good-function snapshots, keyed by netlist digest and order strategy,
//! behind an LRU with a byte budget.
//!
//! The cache exists for exactly one reason: a repeated sweep through the
//! server must perform **zero** good-function builds. A hit hands the
//! request an [`Arc`]'d [`CacheEntry`] whose [`GoodSnapshot`] every worker
//! thaws into a private delta manager ([`dp_core::sweep_universe_ext`]'s
//! warm path), so the request's manager counters are thaw-only — the build
//! cost stays attributed to the admission that paid it.
//!
//! Keying and eviction rules:
//!
//! * The key is `(circuit digest, order-strategy name)`. The digest
//!   ([`dp_netlist::Circuit::digest`]) pins the netlist structurally, so a
//!   renamed or rewired circuit can never alias a stale snapshot; the order
//!   strategy is part of the key because a snapshot freezes its variable
//!   order — thawing a fanin-DFS base cannot serve an `identity` request's
//!   cost model. Per-request budgets are deliberately *not* in the key:
//!   budgets bound the fault propagations of one request, not the identity
//!   of the good functions.
//! * Eviction is least-recently-used by byte size
//!   ([`dp_core::GoodSnapshot::approx_bytes`]), but an entry with live
//!   borrowers (`Arc::strong_count > 1`: some request is still sweeping
//!   against it) is never evicted — the budget overshoots instead, and the
//!   next admission retries once the borrowers drop.

use std::sync::Arc;

use dp_core::GoodSnapshot;
use dp_netlist::Circuit;

use crate::protocol::CacheStatus;

/// Cache identity: netlist digest × order-strategy name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`Circuit::digest`] of the compiled netlist.
    pub digest: u64,
    /// [`dp_core::OrderStrategy::name`] of the requested order.
    pub order: String,
}

/// One resident entry: the compiled circuit and its frozen good functions.
#[derive(Debug)]
pub struct CacheEntry {
    /// The compiled netlist the snapshot was built from. Requests use this
    /// circuit (not their own compilation) so net ids and snapshot node ids
    /// always agree.
    pub circuit: Circuit,
    /// The frozen good functions every request worker thaws.
    pub snapshot: GoodSnapshot,
}

impl CacheEntry {
    /// The budgeting size of the entry.
    pub fn bytes(&self) -> usize {
        self.snapshot.approx_bytes()
    }
}

#[derive(Debug)]
struct Slot {
    key: CacheKey,
    entry: Arc<CacheEntry>,
    /// Monotonic use counter; smallest = least recently used.
    last_used: u64,
}

/// The LRU snapshot cache. Interior mutability is the caller's problem
/// (the server wraps it in a `Mutex`); builds happen *outside* any lock,
/// with [`SnapshotCache::admit`] resolving the race when two misses build
/// the same key concurrently.
#[derive(Debug)]
pub struct SnapshotCache {
    budget_bytes: usize,
    slots: Vec<Slot>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SnapshotCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> SnapshotCache {
        SnapshotCache {
            budget_bytes,
            slots: Vec::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks the key up, bumping its recency on a hit and the miss counter
    /// otherwise.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Arc<CacheEntry>> {
        let tick = self.touch();
        match self.slots.iter_mut().find(|s| s.key == *key) {
            Some(slot) => {
                slot.last_used = tick;
                self.hits += 1;
                Some(Arc::clone(&slot.entry))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Admits a freshly built entry, evicting LRU entries past the byte
    /// budget. If the key is already resident (a concurrent miss built it
    /// first), the resident entry wins and the new build is dropped — both
    /// were built from the same digest and order, so they are
    /// interchangeable, and keeping the resident one preserves its
    /// borrowers' recency.
    ///
    /// Admission never counts as a hit or miss (the preceding
    /// [`SnapshotCache::lookup`] already did), and the just-admitted entry
    /// can never be evicted by its own admission: the caller still holds
    /// the returned `Arc`, which makes it live.
    pub fn admit(&mut self, key: CacheKey, entry: Arc<CacheEntry>) -> Arc<CacheEntry> {
        let tick = self.touch();
        if let Some(slot) = self.slots.iter_mut().find(|s| s.key == key) {
            slot.last_used = tick;
            return Arc::clone(&slot.entry);
        }
        self.slots.push(Slot {
            key,
            entry: Arc::clone(&entry),
            last_used: tick,
        });
        self.evict_to_budget();
        entry
    }

    /// Evicts least-recently-used *dead* entries (no outside borrowers)
    /// until the resident bytes fit the budget or nothing evictable is
    /// left. Live entries make the budget overshoot rather than ever being
    /// dropped mid-sweep.
    fn evict_to_budget(&mut self) {
        while self.resident_bytes() > self.budget_bytes {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| Arc::strong_count(&s.entry) == 1)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    self.slots.remove(i);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }

    fn resident_bytes(&self) -> usize {
        self.slots.iter().map(|s| s.entry.bytes()).sum()
    }

    /// Counters for the `status` frame.
    pub fn status(&self) -> CacheStatus {
        CacheStatus {
            entries: self.slots.len() as u64,
            bytes: self.resident_bytes() as u64,
            budget_bytes: self.budget_bytes as u64,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::{DiffProp, EngineConfig, OrderStrategy};
    use dp_netlist::generators;

    fn entry_for(circuit: Circuit, order: OrderStrategy) -> (CacheKey, Arc<CacheEntry>) {
        let key = CacheKey {
            digest: circuit.digest(),
            order: order.name(),
        };
        let snapshot = DiffProp::build_snapshot(
            &circuit,
            EngineConfig {
                order,
                ..Default::default()
            },
        )
        .expect("unbudgeted build");
        (key, Arc::new(CacheEntry { circuit, snapshot }))
    }

    #[test]
    fn same_digest_different_order_strategy_misses() {
        let mut cache = SnapshotCache::new(usize::MAX);
        let (k1, e1) = entry_for(generators::c95(), OrderStrategy::Identity);
        assert!(cache.lookup(&k1).is_none());
        cache.admit(k1.clone(), e1);
        assert!(cache.lookup(&k1).is_some(), "same key hits");
        let k2 = CacheKey {
            digest: generators::c95().digest(),
            order: OrderStrategy::FaninDfs.name(),
        };
        assert_eq!(k1.digest, k2.digest, "one circuit, two strategies");
        assert!(
            cache.lookup(&k2).is_none(),
            "an order-strategy change must miss: the frozen base bakes in its order"
        );
        let s = cache.status();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn live_entries_survive_eviction_pressure() {
        // Budget of zero: every admission is over budget immediately.
        let mut cache = SnapshotCache::new(0);
        let (k1, e1) = entry_for(generators::c17(), OrderStrategy::Identity);
        let live = cache.admit(k1.clone(), e1);
        // Held `live` borrow → strong_count 2 → not evictable, despite the
        // budget already being blown.
        let (k2, e2) = entry_for(generators::c95(), OrderStrategy::Identity);
        let live2 = cache.admit(k2.clone(), e2);
        assert_eq!(cache.status().entries, 2, "both entries live, none evicted");
        assert_eq!(cache.status().evictions, 0);
        assert!(cache.lookup(&k1).is_some());
        // Dropping the borrows makes them fair game: the next admission
        // evicts both stale entries (budget 0 keeps nothing dead).
        drop(live);
        drop(live2);
        let (k3, e3) = entry_for(generators::full_adder(), OrderStrategy::Identity);
        let _live3 = cache.admit(k3.clone(), e3);
        assert!(cache.lookup(&k1).is_none(), "dead LRU entry evicted");
        assert!(cache.lookup(&k2).is_none(), "dead LRU entry evicted");
        assert_eq!(cache.status().evictions, 2);
        assert_eq!(cache.status().entries, 1, "only the live admission stays");
    }

    #[test]
    fn lru_evicts_the_coldest_dead_entry_first() {
        let (k1, e1) = entry_for(generators::c17(), OrderStrategy::Identity);
        let (k2, e2) = entry_for(generators::full_adder(), OrderStrategy::Identity);
        let (k3, e3) = entry_for(generators::c95(), OrderStrategy::Identity);
        // Budget sized so that the final resident set (k1 + k3) fits exactly:
        // admitting k3 must evict precisely one entry — the coldest.
        let budget = e1.bytes() + e3.bytes();
        assert!(e1.bytes() + e2.bytes() <= budget, "both small entries fit initially");
        let mut cache = SnapshotCache::new(budget);
        drop(cache.admit(k1.clone(), e1));
        drop(cache.admit(k2.clone(), e2));
        // Touch k1 so k2 becomes the LRU.
        assert!(cache.lookup(&k1).is_some());
        drop(cache.admit(k3.clone(), e3));
        assert_eq!(cache.status().evictions, 1, "one eviction restores the budget");
        assert!(cache.lookup(&k1).is_some(), "recently used survives");
        assert!(cache.lookup(&k2).is_none(), "LRU entry evicted");
        assert!(cache.lookup(&k3).is_some(), "new entry resident");
    }

    #[test]
    fn concurrent_build_race_keeps_the_resident_entry() {
        let mut cache = SnapshotCache::new(usize::MAX);
        let (key, first) = entry_for(generators::c17(), OrderStrategy::Identity);
        let (_, second) = entry_for(generators::c17(), OrderStrategy::Identity);
        let a = cache.admit(key.clone(), first);
        let b = cache.admit(key.clone(), second);
        assert!(Arc::ptr_eq(&a, &b), "second admission returns the resident entry");
        assert_eq!(cache.status().entries, 1);
    }
}
