//! `dp-client` — command-line client for a running `dp-serve`.
//!
//! ```text
//! dp-client sweep --circuit c432s --order auto [--model M] [--threads N]
//!                 [--count N] [--no-collapse] [--node-budget N]
//!                 [--fallback-samples N] [--report PATH]
//! dp-client detectability --circuit c17 --net <name> --stuck-at 0|1 [--order S]
//! dp-client adherence     --circuit c17 --net <name> --stuck-at 0|1 [--order S]
//! dp-client status
//! dp-client shutdown
//! ```
//!
//! All commands accept `--addr HOST:PORT` (default `127.0.0.1:4590`).
//! `sweep` prints one TSV record per fault to stdout — byte-identical to
//! the batch [`dp_core::summary_line`] rendering — and a one-line summary
//! to stderr; `--report PATH` writes the schema-v2 `sweep_report.json`
//! the server returned (stream section included).

use dp_core::OrderStrategy;
use dp_serve::{CircuitSpec, Client, PointParams, SweepParams};
use dp_bdd::BudgetConfig;

fn usage() -> ! {
    eprintln!(
        "usage: dp-client [--addr HOST:PORT] <sweep|detectability|adherence|status|shutdown> ...\n\
         sweep         --circuit C [--order S] [--model M] [--count N] [--threads N]\n\
                       [--no-collapse] [--node-budget N] [--fallback-samples N] [--report PATH]\n\
         M is a fault model: stuck (default), nfbf-and, nfbf-or, fbridge-and,\n\
         fbridge-or, or multi\n\
         detectability --circuit C --net NAME --stuck-at 0|1 [--order S] [--node-budget N]\n\
         adherence     --circuit C --net NAME --stuck-at 0|1 [--order S] [--node-budget N]\n\
         status        snapshot-cache counters\n\
         shutdown      stop the server\n\
         C is a builtin benchmark name (c17, full_adder, c95, alu74181, c432s, c499s,\n\
         c1355s, c1908s) or a path to an ISCAS-85 .bench file (sent inline)"
    );
    std::process::exit(2);
}

struct Opts {
    addr: String,
    circuit: Option<String>,
    model: String,
    order: OrderStrategy,
    count: usize,
    threads: usize,
    collapse: bool,
    node_budget: Option<usize>,
    fallback_samples: u64,
    report: Option<String>,
    net: Option<String>,
    stuck_at: Option<bool>,
}

fn parse_args(raw: Vec<String>) -> (Vec<String>, Opts) {
    let mut positional = Vec::new();
    let mut opts = Opts {
        addr: "127.0.0.1:4590".into(),
        circuit: None,
        model: "stuck".into(),
        order: OrderStrategy::Identity,
        count: 0,
        threads: 1,
        collapse: true,
        node_budget: None,
        fallback_samples: 4096,
        report: None,
        net: None,
        stuck_at: None,
    };
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg.clone(), None),
        };
        let mut value = |name: &str| -> String {
            inline.clone().or_else(|| it.next()).unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        let number = |name: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{name}: `{v}` is not a number");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr"),
            "--circuit" => opts.circuit = Some(value("--circuit")),
            "--model" => opts.model = value("--model"),
            "--order" => {
                let v = value("--order");
                opts.order = OrderStrategy::parse(&v).unwrap_or_else(|| {
                    eprintln!("--order: unknown strategy `{v}`");
                    usage()
                });
            }
            "--count" => opts.count = number("--count", value("--count")) as usize,
            "--threads" => opts.threads = number("--threads", value("--threads")) as usize,
            "--no-collapse" => opts.collapse = false,
            "--node-budget" => {
                opts.node_budget = Some(number("--node-budget", value("--node-budget")) as usize)
            }
            "--fallback-samples" => {
                opts.fallback_samples =
                    number("--fallback-samples", value("--fallback-samples"))
            }
            "--report" => opts.report = Some(value("--report")),
            "--net" => opts.net = Some(value("--net")),
            "--stuck-at" => {
                opts.stuck_at = match value("--stuck-at").as_str() {
                    "0" => Some(false),
                    "1" => Some(true),
                    v => {
                        eprintln!("--stuck-at: expected 0 or 1, got `{v}`");
                        usage()
                    }
                }
            }
            f if f.starts_with("--") => {
                eprintln!("unknown option {f}");
                usage()
            }
            _ => positional.push(arg),
        }
    }
    (positional, opts)
}

fn budget(opts: &Opts) -> BudgetConfig {
    match opts.node_budget {
        Some(n) => BudgetConfig::with_max_nodes(n),
        None => BudgetConfig::UNLIMITED,
    }
}

fn circuit_spec(opts: &Opts) -> CircuitSpec {
    let arg = opts.circuit.as_deref().unwrap_or_else(|| {
        eprintln!("--circuit is required");
        usage()
    });
    CircuitSpec::from_arg(arg).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

fn connect(opts: &Opts) -> Client {
    Client::connect(opts.addr.as_str()).unwrap_or_else(|e| {
        eprintln!("dp-client: cannot connect to {}: {e}", opts.addr);
        std::process::exit(1);
    })
}

fn main() {
    let (args, opts) = parse_args(std::env::args().skip(1).collect());
    let Some(cmd) = args.first() else { usage() };
    let mut client = connect(&opts);
    let outcome = match cmd.as_str() {
        "sweep" => {
            let params = SweepParams {
                order: opts.order,
                model: opts.model.clone(),
                count: opts.count,
                collapse: opts.collapse,
                threads: opts.threads,
                fallback_samples: opts.fallback_samples,
                budget: budget(&opts),
            };
            client.sweep(circuit_spec(&opts), params, |_, line| println!("{line}"))
        }
        "detectability" | "adherence" => {
            let point = PointParams {
                order: opts.order,
                budget: budget(&opts),
                net: opts.net.clone().unwrap_or_else(|| {
                    eprintln!("--net is required");
                    usage()
                }),
                stuck_at: opts.stuck_at.unwrap_or_else(|| {
                    eprintln!("--stuck-at is required");
                    usage()
                }),
            };
            match client.point(cmd == "adherence", circuit_spec(&opts), point) {
                Ok(fields) => {
                    println!("{}", fields.to_pretty_string());
                    return;
                }
                Err(e) => {
                    eprintln!("dp-client: {e}");
                    std::process::exit(1);
                }
            }
        }
        "status" => match client.status() {
            Ok(s) => {
                println!(
                    "entries {}  bytes {}/{}  hits {}  misses {}  evictions {}",
                    s.entries, s.bytes, s.budget_bytes, s.hits, s.misses, s.evictions
                );
                return;
            }
            Err(e) => {
                eprintln!("dp-client: {e}");
                std::process::exit(1);
            }
        },
        "shutdown" => match client.shutdown() {
            Ok(()) => {
                eprintln!("dp-client: server acknowledged shutdown");
                return;
            }
            Err(e) => {
                eprintln!("dp-client: {e}");
                std::process::exit(1);
            }
        },
        _ => usage(),
    };
    match outcome {
        Ok(done) => {
            eprintln!(
                "{} records ({} skipped), cache {}, {} unique lookups ({} from the frozen base)",
                done.records, done.skipped, done.cache, done.unique_lookups, done.base_hits
            );
            if let Some(path) = &opts.report {
                let text = done.report_document().to_pretty_string();
                if let Err(e) = std::fs::write(path, text) {
                    eprintln!("dp-client: cannot write {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("dp-client: report written to {path}");
            }
        }
        Err(e) => {
            eprintln!("dp-client: {e}");
            std::process::exit(1);
        }
    }
}
