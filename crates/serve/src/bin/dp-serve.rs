//! `dp-serve` — the resident sweep server.
//!
//! ```text
//! dp-serve [--addr HOST:PORT] [--cache-bytes N]
//! ```
//!
//! Binds (default `127.0.0.1:4590`), prints the resolved address to
//! stderr, and serves until a client sends `shutdown`.

use dp_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: dp-serve [--addr HOST:PORT] [--cache-bytes N]\n\
         --addr A         listen address (default 127.0.0.1:4590; port 0 = OS-assigned)\n\
         --cache-bytes N  snapshot-cache byte budget (default 256 MiB)"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:4590".to_string();
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        let mut value = |name: &str| -> String {
            inline.clone().or_else(|| args.next()).unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--cache-bytes" => {
                let v = value("--cache-bytes");
                config.cache_bytes = v.parse().unwrap_or_else(|_| {
                    eprintln!("--cache-bytes: `{v}` is not a number");
                    usage()
                });
            }
            _ => usage(),
        }
    }
    let server = Server::bind(addr.as_str(), config).unwrap_or_else(|e| {
        eprintln!("dp-serve: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    eprintln!("dp-serve: listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("dp-serve: {e}");
        std::process::exit(1);
    }
}
