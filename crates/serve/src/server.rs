//! The resident sweep server: a TCP accept loop, one handler thread per
//! connection, one shared [`SnapshotCache`] behind a mutex.
//!
//! Requests stream their answers incrementally (see [`crate::protocol`]);
//! the BDD work itself runs through [`dp_core::sweep_universe_ext`]'s warm
//! path, so every request after the first for a `(circuit, order)` pair
//! performs zero good-function builds — the acceptance criterion the
//! `serve` integration tests pin with exact counter arithmetic.
//!
//! Snapshot builds happen *outside* the cache lock: a slow admission (tens
//! of seconds on the deep surrogates) must not stall a concurrent request
//! that would hit a resident entry.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use dp_analysis::fault_model_universe;
use dp_core::{
    summary_line, sweep_report, sweep_universe_ext, DiffProp, EngineConfig, FallbackConfig,
    FaultSummary, ManagerMode, OrderStrategy, Parallelism, SweepConfig,
};
use dp_bdd::BudgetConfig;
use dp_faults::{Fault, FaultSite, StuckAtFault};
use dp_telemetry::json::JsonValue;
use dp_telemetry::{report_to_json, StreamInfo};

use crate::cache::{CacheEntry, CacheKey, SnapshotCache};
use crate::protocol::{CircuitSpec, Frame, PointParams, Request, SweepParams};

/// Server construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Snapshot-cache byte budget (default 256 MiB — roomy for every
    /// builtin at several order strategies).
    pub cache_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            cache_bytes: 256 << 20,
        }
    }
}

struct ServerState {
    cache: Mutex<SnapshotCache>,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// A bound-but-not-yet-running server. [`Server::run`] blocks until a
/// client sends `shutdown`.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener. Use port `0` to let the OS pick (tests do).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                cache: Mutex::new(SnapshotCache::new(config.cache_bytes)),
                shutdown: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address (resolved port included).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until a client sends `shutdown`, then joins every connection
    /// handler before returning (in-flight sweeps finish their streams).
    pub fn run(self) -> io::Result<()> {
        let mut handlers = Vec::new();
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.state.shutdown.load(Ordering::SeqCst) {
                // The wake-up connection a shutdown handler makes to
                // unblock this accept — nothing to serve.
                drop(stream);
                break;
            }
            let state = Arc::clone(&self.state);
            handlers.push(std::thread::spawn(move || handle_connection(stream, state)));
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }
}

fn handle_connection(stream: TcpStream, state: Arc<ServerState>) {
    if let Err(e) = serve_connection(stream, &state) {
        // A dropped client mid-stream is routine, not a server fault.
        if e.kind() != io::ErrorKind::BrokenPipe && e.kind() != io::ErrorKind::ConnectionReset {
            eprintln!("dp-serve: connection error: {e}");
        }
    }
}

fn serve_connection(stream: TcpStream, state: &ServerState) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut out = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let quit = match Request::from_line(&line) {
            Err(e) => {
                send(&mut out, &Frame::Error {
                    message: e.to_string(),
                })?;
                false
            }
            Ok(request) => handle_request(request, state, &mut out)?,
        };
        if quit {
            return Ok(());
        }
    }
    Ok(())
}

fn send(out: &mut impl Write, frame: &Frame) -> io::Result<()> {
    writeln!(out, "{}", frame.to_line())?;
    out.flush()
}

/// Handles one request; `Ok(true)` means the connection (and server) is
/// done. Request-level failures become `error` frames; only transport
/// failures surface as `Err`.
fn handle_request(
    request: Request,
    state: &ServerState,
    out: &mut impl Write,
) -> io::Result<bool> {
    match request {
        Request::Status => {
            let status = state.cache.lock().unwrap().status();
            send(out, &Frame::Status(status))?;
        }
        Request::Shutdown => {
            send(out, &Frame::Bye)?;
            state.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop so it observes the flag.
            let _ = TcpStream::connect(state.addr);
            return Ok(true);
        }
        Request::Sweep { circuit, params } => match resolve_entry(
            state,
            &circuit,
            params.order,
            params.budget,
        ) {
            Err(message) => send(out, &Frame::Error { message })?,
            Ok((entry, cache)) => stream_sweep(&entry, cache, &params, out)?,
        },
        Request::Detectability { circuit, point } | Request::Adherence { circuit, point } => {
            match resolve_entry(state, &circuit, point.order, point.budget) {
                Err(message) => send(out, &Frame::Error { message })?,
                Ok((entry, cache)) => match point_value(&entry, cache, &point) {
                    Err(message) => send(out, &Frame::Error { message })?,
                    Ok(fields) => send(out, &Frame::Value(fields))?,
                },
            }
        }
    }
    Ok(false)
}

/// Compiles the circuit and resolves its snapshot through the cache:
/// lookup under the lock, build *outside* it on a miss, admit the result.
/// Returns the entry and the cache disposition (`"hit"` / `"miss"`).
fn resolve_entry(
    state: &ServerState,
    spec: &CircuitSpec,
    order: OrderStrategy,
    budget: BudgetConfig,
) -> Result<(Arc<CacheEntry>, &'static str), String> {
    let circuit = spec.compile()?;
    let key = CacheKey {
        digest: circuit.digest(),
        order: order.name(),
    };
    if let Some(entry) = state.cache.lock().unwrap().lookup(&key) {
        return Ok((entry, "hit"));
    }
    // Only successful builds are admitted: a budget-tripped build answers
    // this request with an error and leaves the cache untouched.
    let snapshot = DiffProp::build_snapshot(
        &circuit,
        EngineConfig {
            order,
            budget,
            ..Default::default()
        },
    )
    .map_err(|e| format!("good-function snapshot build failed: {e}"))?;
    let entry = Arc::new(CacheEntry { circuit, snapshot });
    let entry = state.cache.lock().unwrap().admit(key, entry);
    Ok((entry, "miss"))
}

/// Runs a warm-snapshot sweep, framing each summary as it clears the
/// in-order reorder buffer, then the `done` frame with the schema-v2
/// report (stream section filled in).
fn stream_sweep(
    entry: &CacheEntry,
    cache: &'static str,
    params: &SweepParams,
    out: &mut impl Write,
) -> io::Result<()> {
    let circuit = &entry.circuit;
    let mut faults = match fault_model_universe(circuit, &params.model, None, 0) {
        Ok(faults) => faults,
        Err(message) => return send(out, &Frame::Error { message }),
    };
    if params.count > 0 {
        faults.truncate(params.count);
    }
    let config = SweepConfig {
        engine: EngineConfig {
            order: params.order,
            budget: params.budget,
            ..Default::default()
        },
        parallelism: if params.threads <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Threads(params.threads)
        },
        fallback: FallbackConfig {
            samples: params.fallback_samples,
            ..Default::default()
        },
        collapse: params.collapse,
        manager: ManagerMode::SharedSnapshot,
        ..Default::default()
    };
    let mut records: u64 = 0;
    let mut io_failure: Option<io::Error> = None;
    let mut on_record = |index: usize, summary: &FaultSummary| {
        if io_failure.is_some() {
            return;
        }
        let frame = Frame::Record {
            index,
            line: summary_line(index, summary),
        };
        match send(out, &frame) {
            Ok(()) => records += 1,
            Err(e) => io_failure = Some(e),
        }
    };
    let result = sweep_universe_ext(
        circuit,
        &faults,
        &config,
        Some(&entry.snapshot),
        Some(&mut on_record),
    );
    if let Some(e) = io_failure {
        return Err(e);
    }
    let mut report = sweep_report(circuit.name(), &params.model, &result);
    report.stream = Some(StreamInfo {
        frames: records + 1,
        records,
        skipped: faults.len() as u64 - records,
        cache: cache.to_string(),
    });
    let stats = result.merged_stats();
    send(out, &Frame::Done {
        cache: cache.to_string(),
        unique_lookups: stats.unique.lookups,
        base_hits: stats.base_hits,
        report: report_to_json(&report),
    })
}

/// Answers a point query from a thawed delta manager over the cached
/// snapshot: exact detectability, and adherence against the syndrome
/// bound — the same arithmetic the sweep applies per fault.
fn point_value(
    entry: &CacheEntry,
    cache: &'static str,
    point: &PointParams,
) -> Result<JsonValue, String> {
    let circuit = &entry.circuit;
    let net = circuit.find_net(&point.net).ok_or_else(|| {
        format!("no net named `{}` in circuit `{}`", point.net, circuit.name())
    })?;
    let fault = Fault::StuckAt(StuckAtFault {
        site: FaultSite::Net(net),
        value: point.stuck_at,
    });
    let mut dp = DiffProp::from_snapshot(
        circuit,
        &entry.snapshot,
        EngineConfig {
            order: point.order,
            budget: point.budget,
            ..Default::default()
        },
    );
    let analysis = dp.try_analyze(&fault).map_err(|e| e.to_string())?;
    let bound = dp.detectability_bound(&fault);
    let adherence = bound.and_then(|u| (u > 0.0).then(|| analysis.detectability / u));
    let opt_f64 = |v: Option<f64>| v.map(JsonValue::Float).unwrap_or(JsonValue::Null);
    let opt_bits = |v: Option<f64>| {
        v.map(|x| JsonValue::Str(format!("{:016x}", x.to_bits())))
            .unwrap_or(JsonValue::Null)
    };
    Ok(JsonValue::obj(vec![
        ("cache", JsonValue::Str(cache.to_string())),
        ("circuit", JsonValue::Str(circuit.name().to_string())),
        ("fault", JsonValue::Str(fault.to_string())),
        ("net", JsonValue::Str(point.net.clone())),
        ("stuck_at", JsonValue::Int(i128::from(point.stuck_at))),
        ("detectability", JsonValue::Float(analysis.detectability)),
        (
            "detectability_bits",
            JsonValue::Str(format!("{:016x}", analysis.detectability.to_bits())),
        ),
        (
            "test_count",
            analysis
                .test_count
                .map(|c| JsonValue::Str(c.to_string()))
                .unwrap_or(JsonValue::Null),
        ),
        (
            "observable_outputs",
            JsonValue::Int(analysis.num_observable() as i128),
        ),
        (
            "site_function_constant",
            JsonValue::Bool(analysis.site_function_constant),
        ),
        ("syndrome_bound", opt_f64(bound)),
        ("adherence", opt_f64(adherence)),
        ("adherence_bits", opt_bits(adherence)),
    ]))
}
