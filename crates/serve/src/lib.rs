//! **Sweep-as-a-service**: a resident server that amortises good-function
//! construction across requests.
//!
//! Building the good-function OBDDs dominates short sweeps — on the deep
//! ISCAS surrogates it is seconds of work before the first fault is even
//! looked at. A batch CLI pays that price per invocation; `dp-serve` pays
//! it once per `(circuit, order strategy)` pair and keeps the frozen
//! [`dp_core::GoodSnapshot`] resident, so every subsequent request thaws
//! delta managers against the shared base and performs **zero**
//! good-function builds (provable from the manager counters: a warm
//! sweep's `unique.lookups` plus the one-off build cost equals a cold
//! sweep's, exactly).
//!
//! Three layers:
//!
//! * [`protocol`] — newline-delimited JSON framing: requests (`sweep`,
//!   `detectability`, `adherence`, `status`, `shutdown`), streamed
//!   `record` frames carrying the exact batch TSV per fault, and the
//!   schema-v2 `done` report with its `stream` section.
//! * [`cache`] — the [`cache::SnapshotCache`]: LRU over
//!   `(netlist digest, order name)` with a byte budget; live entries are
//!   never evicted.
//! * [`server`] / [`client`] — the std-TCP accept loop (thread per
//!   connection) and the blocking client the `dp-client` binary and
//!   `diffprop analyze --connect` are built on.
//!
//! See `DESIGN.md` §8 for the protocol walk-through and the cache's
//! correctness argument.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CacheEntry, CacheKey, SnapshotCache};
pub use client::{Client, SweepOutcome};
pub use protocol::{
    CacheStatus, CircuitSpec, Frame, PointParams, ProtocolError, Request, SweepParams,
    WireSummary, PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig};
