//! The `dp-serve` wire protocol: newline-delimited JSON frames over TCP.
//!
//! One request is one line; the server answers with one or more
//! single-line frames and then either keeps the connection open for the
//! next request (`done`, `value`, `status`) or closes it (`bye`, after a
//! `shutdown`). Streaming is the point of the framing: a `sweep` request
//! yields one `record` frame per fault **in input-fault order, as the
//! work-stealing queue completes the prefix**, so a client can consume
//! results long before the sweep finishes. Each record carries the exact
//! batch TSV rendering ([`dp_core::summary_line`]) — concatenating the
//! `line` fields of a streamed sweep reproduces the batch output
//! byte-for-byte, which the golden tests assert.
//!
//! All scalars that matter for bit-identity (`detectability`, `adherence`)
//! travel as `f64` bit patterns inside the TSV line, never as decimal
//! floats, so nothing is lost to formatting on the way through.

use std::fmt;

use dp_core::{BudgetConfig, FaultOutcome, FaultSummary, OrderStrategy};
use dp_faults::Fault;
use dp_netlist::{generators, parse_bench, Circuit};
use dp_telemetry::json::JsonValue;

/// Bumped when a frame or request shape changes incompatibly. Exchanged in
/// no handshake yet — clients and servers from one build tree agree by
/// construction — but recorded in every `error` frame a server emits for
/// an unparseable request, which is where a mismatch would surface.
pub const PROTOCOL_VERSION: u64 = 1;

/// A protocol-level failure: a line that is not valid JSON, or valid JSON
/// that is not a valid request/frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn err(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

/// The circuit a request operates on. Builtins travel by name so the
/// server compiles the *same generator output* the client would (identical
/// net ids, identical fault universe); anything else travels as inline
/// ISCAS-85 `.bench` source, which both sides parse identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitSpec {
    /// One of the built-in benchmark names (`c17`, `c95`, ...).
    Builtin(String),
    /// Inline `.bench` source, with the client-side path kept as the name.
    Bench { name: String, source: String },
}

impl CircuitSpec {
    /// Builds a spec from a CLI circuit argument: a builtin name stays a
    /// name, anything else is read from disk as `.bench` source.
    pub fn from_arg(arg: &str) -> Result<CircuitSpec, String> {
        if is_builtin(arg) {
            Ok(CircuitSpec::Builtin(arg.to_string()))
        } else {
            let source =
                std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?;
            Ok(CircuitSpec::Bench {
                name: arg.to_string(),
                source,
            })
        }
    }

    /// Compiles the spec into a [`Circuit`].
    pub fn compile(&self) -> Result<Circuit, String> {
        match self {
            CircuitSpec::Builtin(name) => {
                load_builtin(name).ok_or_else(|| format!("unknown builtin circuit `{name}`"))
            }
            CircuitSpec::Bench { name, source } => {
                parse_bench(source, name).map_err(|e| format!("cannot parse {name}: {e}"))
            }
        }
    }

    fn to_json(&self) -> JsonValue {
        match self {
            CircuitSpec::Builtin(name) => {
                JsonValue::obj(vec![("builtin", JsonValue::Str(name.clone()))])
            }
            CircuitSpec::Bench { name, source } => JsonValue::obj(vec![
                ("name", JsonValue::Str(name.clone())),
                ("bench", JsonValue::Str(source.clone())),
            ]),
        }
    }

    fn from_json(v: &JsonValue) -> Result<CircuitSpec, ProtocolError> {
        if let Some(name) = v.get("builtin").and_then(JsonValue::as_str) {
            return Ok(CircuitSpec::Builtin(name.to_string()));
        }
        let source = v
            .get("bench")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err("circuit needs `builtin` or `bench`"))?;
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("<inline>");
        Ok(CircuitSpec::Bench {
            name: name.to_string(),
            source: source.to_string(),
        })
    }
}

/// The built-in benchmark names shared with the `diffprop` CLI.
pub fn is_builtin(name: &str) -> bool {
    load_builtin(name).is_some()
}

fn load_builtin(name: &str) -> Option<Circuit> {
    Some(match name {
        "c17" => generators::c17(),
        "full_adder" => generators::full_adder(),
        "c95" => generators::c95(),
        "alu74181" => generators::alu74181(),
        "c432s" => generators::c432_surrogate(),
        "c499s" => generators::c499_surrogate(),
        "c1355s" => generators::c1355_surrogate(),
        "c1908s" => generators::c1908_surrogate(),
        _ => return None,
    })
}

/// Per-request sweep parameters. Everything that changes *which rows* come
/// back (`count`, `collapse`, `budget`, `fallback_samples`) or the cache
/// key (`order`) is explicit; execution detail the rows are invariant to
/// (`threads`) is advisory to the server.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepParams {
    /// Variable-order strategy — part of the snapshot-cache key.
    pub order: OrderStrategy,
    /// Fault model of the swept universe: `stuck` (checkpoint stuck-at,
    /// the default), `nfbf-and` / `nfbf-or` (non-feedback bridges),
    /// `fbridge-and` / `fbridge-or` (feedback bridges via the ternary
    /// fixpoint), or `multi` (all distinct-site checkpoint pairs). Omitted
    /// from the wire when it is the default, so old clients keep working.
    pub model: String,
    /// First `count` faults of the universe; `0` sweeps all of them.
    pub count: usize,
    /// Structural fault collapsing (rows identical either way).
    pub collapse: bool,
    /// Worker threads the server should use for this sweep.
    pub threads: usize,
    /// Random vectors per budget-degraded estimate.
    pub fallback_samples: u64,
    /// Per-request BDD work budget. Applies to the fault propagations of
    /// this request; the cache key deliberately excludes it.
    pub budget: BudgetConfig,
}

impl Default for SweepParams {
    fn default() -> SweepParams {
        SweepParams {
            order: OrderStrategy::Identity,
            model: "stuck".to_string(),
            count: 0,
            collapse: true,
            threads: 1,
            fallback_samples: 4096,
            budget: BudgetConfig::UNLIMITED,
        }
    }
}

/// Parameters of a single-fault point query (`detectability`, `adherence`).
#[derive(Debug, Clone, PartialEq)]
pub struct PointParams {
    /// Variable-order strategy — part of the snapshot-cache key.
    pub order: OrderStrategy,
    /// Per-request BDD work budget (excluded from the cache key).
    pub budget: BudgetConfig,
    /// Net name of the stuck-at site.
    pub net: String,
    /// `true` for stuck-at-1.
    pub stuck_at: bool,
}

/// A client request (one JSON line).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Stream the stuck-at universe sweep of a circuit.
    Sweep {
        circuit: CircuitSpec,
        params: SweepParams,
    },
    /// Exact detectability of one net stuck-at fault.
    Detectability {
        circuit: CircuitSpec,
        point: PointParams,
    },
    /// Exact adherence (detectability / syndrome bound) of one net fault.
    Adherence {
        circuit: CircuitSpec,
        point: PointParams,
    },
    /// Snapshot-cache counters.
    Status,
    /// Stop the server after answering.
    Shutdown,
}

fn budget_to_json(b: &BudgetConfig) -> Option<JsonValue> {
    if *b == BudgetConfig::UNLIMITED {
        return None;
    }
    let opt = |v: Option<i128>| v.map(JsonValue::Int).unwrap_or(JsonValue::Null);
    Some(JsonValue::obj(vec![
        ("max_nodes", opt(b.max_nodes.map(|n| n as i128))),
        ("max_op_steps", opt(b.max_op_steps.map(|n| n as i128))),
    ]))
}

fn budget_from_json(v: Option<&JsonValue>) -> Result<BudgetConfig, ProtocolError> {
    let Some(v) = v else {
        return Ok(BudgetConfig::UNLIMITED);
    };
    let field = |key: &str| -> Result<Option<u64>, ProtocolError> {
        match v.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(n) => n
                .as_u64()
                .map(Some)
                .ok_or_else(|| err(format!("budget.{key} must be a non-negative integer"))),
        }
    };
    Ok(BudgetConfig {
        max_nodes: field("max_nodes")?.map(|n| n as usize),
        max_op_steps: field("max_op_steps")?,
    })
}

fn order_from_json(v: Option<&JsonValue>) -> Result<OrderStrategy, ProtocolError> {
    match v {
        None => Ok(OrderStrategy::Identity),
        Some(v) => {
            let s = v.as_str().ok_or_else(|| err("order must be a string"))?;
            OrderStrategy::parse(s).ok_or_else(|| err(format!("unknown order strategy `{s}`")))
        }
    }
}

fn point_from_json(v: &JsonValue) -> Result<PointParams, ProtocolError> {
    let net = v
        .get("net")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| err("point query needs a `net` name"))?;
    let stuck_at = match v.get("stuck_at").and_then(JsonValue::as_u64) {
        Some(0) => false,
        Some(1) => true,
        _ => return Err(err("`stuck_at` must be 0 or 1")),
    };
    Ok(PointParams {
        order: order_from_json(v.get("order"))?,
        budget: budget_from_json(v.get("budget"))?,
        net: net.to_string(),
        stuck_at,
    })
}

fn point_to_pairs(circuit: &CircuitSpec, p: &PointParams) -> Vec<(&'static str, JsonValue)> {
    let mut pairs = vec![
        ("circuit", circuit.to_json()),
        ("order", JsonValue::Str(p.order.name())),
        ("net", JsonValue::Str(p.net.clone())),
        ("stuck_at", JsonValue::Int(i128::from(p.stuck_at))),
    ];
    if let Some(b) = budget_to_json(&p.budget) {
        pairs.push(("budget", b));
    }
    pairs
}

impl Request {
    /// Serialises the request as one newline-free JSON line.
    pub fn to_line(&self) -> String {
        let v = match self {
            Request::Sweep { circuit, params } => {
                let mut pairs = vec![
                    ("cmd", JsonValue::Str("sweep".into())),
                    ("circuit", circuit.to_json()),
                    ("order", JsonValue::Str(params.order.name())),
                    ("count", JsonValue::Int(params.count as i128)),
                    ("collapse", JsonValue::Bool(params.collapse)),
                    ("threads", JsonValue::Int(params.threads as i128)),
                    (
                        "fallback_samples",
                        JsonValue::Int(params.fallback_samples as i128),
                    ),
                ];
                if params.model != "stuck" {
                    pairs.push(("model", JsonValue::Str(params.model.clone())));
                }
                if let Some(b) = budget_to_json(&params.budget) {
                    pairs.push(("budget", b));
                }
                JsonValue::obj(pairs)
            }
            Request::Detectability { circuit, point } => {
                let mut pairs = vec![("cmd", JsonValue::Str("detectability".into()))];
                pairs.extend(point_to_pairs(circuit, point));
                JsonValue::obj(pairs)
            }
            Request::Adherence { circuit, point } => {
                let mut pairs = vec![("cmd", JsonValue::Str("adherence".into()))];
                pairs.extend(point_to_pairs(circuit, point));
                JsonValue::obj(pairs)
            }
            Request::Status => JsonValue::obj(vec![("cmd", JsonValue::Str("status".into()))]),
            Request::Shutdown => JsonValue::obj(vec![("cmd", JsonValue::Str("shutdown".into()))]),
        };
        v.to_compact_string()
    }

    /// Parses one request line.
    pub fn from_line(line: &str) -> Result<Request, ProtocolError> {
        let v = dp_telemetry::json::parse(line).map_err(|e| err(e.to_string()))?;
        let cmd = v
            .get("cmd")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err("request needs a `cmd` string"))?;
        match cmd {
            "sweep" => {
                let circuit = CircuitSpec::from_json(
                    v.get("circuit").ok_or_else(|| err("sweep needs a circuit"))?,
                )?;
                let defaults = SweepParams::default();
                let params = SweepParams {
                    order: order_from_json(v.get("order"))?,
                    model: match v.get("model") {
                        None => defaults.model.clone(),
                        Some(m) => m
                            .as_str()
                            .ok_or_else(|| err("model must be a string"))?
                            .to_string(),
                    },
                    count: v
                        .get("count")
                        .map(|c| c.as_u64().ok_or_else(|| err("count must be an integer")))
                        .transpose()?
                        .map(|c| c as usize)
                        .unwrap_or(defaults.count),
                    collapse: match v.get("collapse") {
                        None => defaults.collapse,
                        Some(JsonValue::Bool(b)) => *b,
                        Some(_) => return Err(err("collapse must be a boolean")),
                    },
                    threads: v
                        .get("threads")
                        .map(|t| t.as_u64().ok_or_else(|| err("threads must be an integer")))
                        .transpose()?
                        .map(|t| (t as usize).max(1))
                        .unwrap_or(defaults.threads),
                    fallback_samples: v
                        .get("fallback_samples")
                        .map(|s| {
                            s.as_u64()
                                .ok_or_else(|| err("fallback_samples must be an integer"))
                        })
                        .transpose()?
                        .unwrap_or(defaults.fallback_samples),
                    budget: budget_from_json(v.get("budget"))?,
                };
                Ok(Request::Sweep { circuit, params })
            }
            "detectability" | "adherence" => {
                let circuit = CircuitSpec::from_json(
                    v.get("circuit")
                        .ok_or_else(|| err("point query needs a circuit"))?,
                )?;
                let point = point_from_json(&v)?;
                Ok(if cmd == "detectability" {
                    Request::Detectability { circuit, point }
                } else {
                    Request::Adherence { circuit, point }
                })
            }
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(err(format!("unknown cmd `{other}`"))),
        }
    }
}

/// Snapshot-cache counters, as reported by a `status` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStatus {
    /// Entries resident right now.
    pub entries: u64,
    /// Approximate resident bytes ([`dp_core::GoodSnapshot::approx_bytes`]).
    pub bytes: u64,
    /// The configured byte budget.
    pub budget_bytes: u64,
    /// Requests answered from a resident snapshot.
    pub hits: u64,
    /// Requests that had to build (and then cached the result).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// A server response frame (one JSON line each).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// One per-fault record of a streamed sweep, in input-fault order.
    /// `line` is the exact batch TSV rendering of the summary.
    Record { index: usize, line: String },
    /// Terminates a sweep: cache disposition, the sweep's merged
    /// unique-table counters (the zero-rebuild acceptance metric), and the
    /// full schema-v2 report object (with its `stream` section filled in).
    Done {
        cache: String,
        unique_lookups: u64,
        base_hits: u64,
        report: JsonValue,
    },
    /// Answer to a point query; the object carries the scalar fields.
    Value(JsonValue),
    /// Answer to a `status` request.
    Status(CacheStatus),
    /// Acknowledges a `shutdown`; the connection closes after this.
    Bye,
    /// The request failed; the connection stays usable.
    Error { message: String },
}

impl Frame {
    /// Serialises the frame as one newline-free JSON line.
    pub fn to_line(&self) -> String {
        let v = match self {
            Frame::Record { index, line } => JsonValue::obj(vec![
                ("frame", JsonValue::Str("record".into())),
                ("index", JsonValue::Int(*index as i128)),
                ("line", JsonValue::Str(line.clone())),
            ]),
            Frame::Done {
                cache,
                unique_lookups,
                base_hits,
                report,
            } => JsonValue::obj(vec![
                ("frame", JsonValue::Str("done".into())),
                ("cache", JsonValue::Str(cache.clone())),
                ("unique_lookups", JsonValue::Int(*unique_lookups as i128)),
                ("base_hits", JsonValue::Int(*base_hits as i128)),
                ("report", report.clone()),
            ]),
            Frame::Value(fields) => {
                let mut pairs = vec![("frame".to_string(), JsonValue::Str("value".into()))];
                if let Some(obj) = fields.as_obj() {
                    // A re-serialised parsed frame already carries the tag.
                    pairs.extend(obj.iter().filter(|(k, _)| k != "frame").cloned());
                }
                JsonValue::Obj(pairs)
            }
            Frame::Status(s) => JsonValue::obj(vec![
                ("frame", JsonValue::Str("status".into())),
                ("entries", JsonValue::Int(s.entries as i128)),
                ("bytes", JsonValue::Int(s.bytes as i128)),
                ("budget_bytes", JsonValue::Int(s.budget_bytes as i128)),
                ("hits", JsonValue::Int(s.hits as i128)),
                ("misses", JsonValue::Int(s.misses as i128)),
                ("evictions", JsonValue::Int(s.evictions as i128)),
            ]),
            Frame::Bye => JsonValue::obj(vec![("frame", JsonValue::Str("bye".into()))]),
            Frame::Error { message } => JsonValue::obj(vec![
                ("frame", JsonValue::Str("error".into())),
                ("message", JsonValue::Str(message.clone())),
                ("protocol", JsonValue::Int(PROTOCOL_VERSION as i128)),
            ]),
        };
        v.to_compact_string()
    }

    /// Parses one frame line.
    pub fn from_line(line: &str) -> Result<Frame, ProtocolError> {
        let v = dp_telemetry::json::parse(line).map_err(|e| err(e.to_string()))?;
        let kind = v
            .get("frame")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err("frame needs a `frame` tag"))?;
        let int = |key: &str| -> Result<u64, ProtocolError> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| err(format!("frame missing integer `{key}`")))
        };
        match kind {
            "record" => Ok(Frame::Record {
                index: int("index")? as usize,
                line: v
                    .get("line")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| err("record frame missing `line`"))?
                    .to_string(),
            }),
            "done" => Ok(Frame::Done {
                cache: v
                    .get("cache")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| err("done frame missing `cache`"))?
                    .to_string(),
                unique_lookups: int("unique_lookups")?,
                base_hits: int("base_hits")?,
                report: v
                    .get("report")
                    .cloned()
                    .ok_or_else(|| err("done frame missing `report`"))?,
            }),
            "value" => Ok(Frame::Value(v)),
            "status" => Ok(Frame::Status(CacheStatus {
                entries: int("entries")?,
                bytes: int("bytes")?,
                budget_bytes: int("budget_bytes")?,
                hits: int("hits")?,
                misses: int("misses")?,
                evictions: int("evictions")?,
            })),
            "bye" => Ok(Frame::Bye),
            "error" => Ok(Frame::Error {
                message: v
                    .get("message")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            }),
            other => Err(err(format!("unknown frame `{other}`"))),
        }
    }
}

/// A per-fault record decoded from the wire TSV line — every
/// [`FaultSummary`] field except the fault itself, which the client
/// re-derives locally (both sides build the identical universe, so the
/// record's index names the fault).
#[derive(Debug, Clone, PartialEq)]
pub struct WireSummary {
    pub index: usize,
    pub detectability: f64,
    pub test_count: Option<u128>,
    pub observable_outputs: Vec<bool>,
    pub site_function_constant: bool,
    pub adherence: Option<f64>,
    pub outcome: FaultOutcome,
}

impl WireSummary {
    /// Parses one [`dp_core::summary_line`] rendering. The `f64` fields are
    /// decoded from their exact bit patterns, so a summary reconstructed
    /// here renders back to the byte-identical line.
    pub fn parse(line: &str) -> Result<WireSummary, ProtocolError> {
        let fields: Vec<&str> = line.split('\t').collect();
        let [index, _fault, det, count, obs, sfc, adh, outcome] = fields.as_slice() else {
            return Err(err(format!("expected 8 tab-separated fields: {line:?}")));
        };
        let bits = |s: &str, what: &str| -> Result<f64, ProtocolError> {
            u64::from_str_radix(s, 16)
                .map(f64::from_bits)
                .map_err(|_| err(format!("bad {what} bit pattern `{s}`")))
        };
        Ok(WireSummary {
            index: index
                .parse()
                .map_err(|_| err(format!("bad record index `{index}`")))?,
            detectability: bits(det, "detectability")?,
            test_count: match *count {
                "-" => None,
                n => Some(
                    n.parse()
                        .map_err(|_| err(format!("bad test count `{n}`")))?,
                ),
            },
            observable_outputs: obs
                .chars()
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    _ => Err(err(format!("bad observability flag `{c}`"))),
                })
                .collect::<Result<_, _>>()?,
            site_function_constant: match *sfc {
                "0" => false,
                "1" => true,
                other => return Err(err(format!("bad site-constant flag `{other}`"))),
            },
            adherence: match *adh {
                "-" => None,
                a => Some(bits(a, "adherence")?),
            },
            outcome: match *outcome {
                "exact" => FaultOutcome::Exact,
                other => {
                    if let Some(s) = other.strip_prefix("bounded:") {
                        let samples = s
                            .parse()
                            .map_err(|_| err(format!("bad outcome `{other}`")))?;
                        FaultOutcome::Bounded { samples }
                    } else if let Some(d) = other.strip_prefix("oscillating:") {
                        let density_bits = u64::from_str_radix(d, 16)
                            .map_err(|_| err(format!("bad outcome `{other}`")))?;
                        FaultOutcome::Oscillating { density_bits }
                    } else {
                        return Err(err(format!("bad outcome `{other}`")));
                    }
                }
            },
        })
    }

    /// Joins the wire scalars with the locally-derived fault.
    pub fn into_summary(self, fault: Fault) -> FaultSummary {
        FaultSummary {
            fault,
            detectability: self.detectability,
            test_count: self.test_count,
            observable_outputs: self.observable_outputs,
            site_function_constant: self.site_function_constant,
            adherence: self.adherence,
            outcome: self.outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_their_lines() {
        let reqs = vec![
            Request::Sweep {
                circuit: CircuitSpec::Builtin("c95".into()),
                params: SweepParams {
                    order: OrderStrategy::Auto,
                    model: "fbridge-and".into(),
                    count: 12,
                    collapse: false,
                    threads: 4,
                    fallback_samples: 512,
                    budget: BudgetConfig {
                        max_nodes: Some(5000),
                        max_op_steps: None,
                    },
                },
            },
            Request::Detectability {
                circuit: CircuitSpec::Bench {
                    name: "t.bench".into(),
                    source: "INPUT(a)\nOUTPUT(a)\n".into(),
                },
                point: PointParams {
                    order: OrderStrategy::FaninDfs,
                    budget: BudgetConfig::UNLIMITED,
                    net: "a".into(),
                    stuck_at: true,
                },
            },
            Request::Adherence {
                circuit: CircuitSpec::Builtin("c17".into()),
                point: PointParams {
                    order: OrderStrategy::Identity,
                    budget: BudgetConfig::UNLIMITED,
                    net: "n2".into(),
                    stuck_at: false,
                },
            },
            Request::Status,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.to_line();
            assert!(!line.contains('\n'), "one request, one line: {line:?}");
            assert_eq!(Request::from_line(&line).expect("parse back"), req);
        }
    }

    #[test]
    fn frames_round_trip_through_their_lines() {
        let frames = vec![
            Frame::Record {
                index: 3,
                line: "3\tn7 s-a-1\t3fe0000000000000\t16\t101\t1\t-\texact".into(),
            },
            Frame::Done {
                cache: "hit".into(),
                unique_lookups: 12345,
                base_hits: 999,
                report: JsonValue::obj(vec![("circuit", JsonValue::Str("c95".into()))]),
            },
            Frame::Status(CacheStatus {
                entries: 2,
                bytes: 4096,
                budget_bytes: 1 << 20,
                hits: 7,
                misses: 2,
                evictions: 1,
            }),
            Frame::Bye,
            Frame::Error {
                message: "unknown builtin circuit `c9999`".into(),
            },
        ];
        for frame in frames {
            let line = frame.to_line();
            assert!(!line.contains('\n'), "one frame, one line: {line:?}");
            assert_eq!(Frame::from_line(&line).expect("parse back"), frame);
        }
    }

    #[test]
    fn wire_summary_reparses_to_the_identical_line() {
        use dp_core::{summary_line, sweep_universe, SweepConfig};
        use dp_faults::checkpoint_faults;
        let circuit = generators::c17();
        let faults: Vec<Fault> = checkpoint_faults(&circuit)
            .into_iter()
            .map(Fault::from)
            .collect();
        let sweep = sweep_universe(&circuit, &faults, &SweepConfig::default());
        for (i, s) in sweep.summaries.iter().enumerate() {
            let line = summary_line(i, s);
            let wire = WireSummary::parse(&line).expect("parse wire line");
            assert_eq!(wire.index, i);
            let rebuilt = wire.into_summary(s.fault.clone());
            assert_eq!(summary_line(i, &rebuilt), line, "byte-identical round trip");
        }
    }

    #[test]
    fn builtin_specs_compile_to_the_generator_circuits() {
        let spec = CircuitSpec::from_arg("c95").expect("builtin");
        assert_eq!(spec, CircuitSpec::Builtin("c95".into()));
        let compiled = spec.compile().expect("compile");
        assert_eq!(compiled.digest(), generators::c95().digest());
        assert!(CircuitSpec::Builtin("c9999".into()).compile().is_err());
    }
}
