//! Application-layer integration: ATPG, grading, dictionary diagnosis and
//! redundancy identification working together across crates.

use diffprop::core::{find_redundancies, generate_tests, FaultDictionary};
use diffprop::faults::{checkpoint_faults, enumerate_nfbfs, BridgeKind, Fault};
use diffprop::netlist::generators::{alu74181, c432_surrogate, c95};
use diffprop::sim::grade_test_set;

/// The ATPG's own claim ("covers everything detectable") graded by the
/// independent simulator with fault dropping.
#[test]
fn grading_confirms_atpg_coverage() {
    let c = alu74181();
    let faults: Vec<Fault> = checkpoint_faults(&c).into_iter().map(Fault::from).collect();
    let tests = generate_tests(&c, &faults);
    assert!(tests.undetectable.is_empty());
    let grade = grade_test_set(&c, &faults, &tests.vectors);
    assert_eq!(grade.coverage(), 1.0);
    // The coverage ramp is front-loaded: the first half of the vectors
    // covers well over half of the faults (greedy order).
    let ramp = grade.coverage_ramp();
    assert!(ramp[ramp.len() / 2] > 0.5, "ramp {ramp:?}");
}

/// Random vectors need far more patterns than the deterministic set for the
/// same coverage — the practical argument for deterministic ATPG.
#[test]
fn deterministic_set_beats_random_at_equal_length() {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let c = c432_surrogate();
    let faults: Vec<Fault> = checkpoint_faults(&c)
        .into_iter()
        .take(120)
        .map(Fault::from)
        .collect();
    let tests = generate_tests(&c, &faults);
    let deterministic = grade_test_set(&c, &faults, &tests.vectors);
    assert_eq!(deterministic.coverage(), 1.0);

    let mut rng = StdRng::seed_from_u64(2024);
    let random: Vec<Vec<bool>> = (0..tests.vectors.len())
        .map(|_| (0..c.num_inputs()).map(|_| rng.random()).collect())
        .collect();
    let random_grade = grade_test_set(&c, &faults, &random);
    assert!(
        random_grade.coverage() < 1.0,
        "equal-length random set should not reach full coverage on a priority encoder"
    );
}

/// Dictionary diagnosis across fault models: a bridging defect observed on
/// a stuck-at dictionary ranks *some* stuck-at candidate close, but an
/// extended dictionary that includes bridges pins it exactly.
#[test]
fn mixed_model_dictionary_diagnosis() {
    let c = c95();
    let mut faults: Vec<Fault> = checkpoint_faults(&c).into_iter().map(Fault::from).collect();
    let bridges: Vec<Fault> = enumerate_nfbfs(&c, BridgeKind::And)
        .into_iter()
        .take(40)
        .map(Fault::from)
        .collect();
    faults.extend(bridges.iter().cloned());
    let tests = generate_tests(&c, &faults);
    let dict = FaultDictionary::build(&c, &faults, &tests.vectors);
    // Pick a covered bridging fault as the defect.
    let defect_index = faults
        .iter()
        .position(|f| matches!(f, Fault::Bridging(_)) && !tests.undetectable.contains(f))
        .expect("a detectable bridge exists");
    let ranked = dict.diagnose(dict.signature(defect_index));
    assert_eq!(ranked[0].distance, 0);
    assert!(ranked
        .iter()
        .take_while(|cand| cand.distance == 0)
        .any(|cand| cand.fault_index == defect_index));
}

/// Redundancy identification agrees with ATPG's undetectable list on the
/// same universe.
#[test]
fn redundancy_report_matches_atpg_undetectables() {
    let c = alu74181();
    let report = find_redundancies(&c);
    let faults: Vec<Fault> = diffprop::faults::all_stuck_faults(&c)
        .into_iter()
        .map(Fault::from)
        .collect();
    let tests = generate_tests(&c, &faults);
    let from_atpg: Vec<_> = tests
        .undetectable
        .iter()
        .map(|f| match f {
            Fault::StuckAt(s) => *s,
            Fault::Bridging(_) | Fault::MultiStuckAt(_) => unreachable!("stuck-at universe"),
        })
        .collect();
    assert_eq!(report.redundant, from_atpg);
}
