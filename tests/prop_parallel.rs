//! Property tests for the sharded sweep driver and the manager counters.
//!
//! On random circuits, `analyze_universe` must return **byte-identical**
//! per-fault summaries for `Serial` and `Threads(n)`, n ∈ {1, 2, 4} — f64
//! fields compared via `to_bits`, not tolerance. The per-shard
//! `ManagerStats` must also be internally consistent: independently
//! incremented hit/miss/lookup counters that sum up, and a peak node count
//! that brackets what the unique table ever created.

use diffprop::bdd::OpKind;
use diffprop::core::{analyze_universe, DiffProp, EngineConfig, Parallelism, SweepResult};
use diffprop::faults::{checkpoint_faults, enumerate_nfbfs, BridgeKind, Fault};
use diffprop::netlist::generators::{random_circuit, RandomCircuitConfig};
use diffprop::netlist::Circuit;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = (u64, RandomCircuitConfig)> {
    (any::<u64>(), (2usize..=6, 4usize..=20, 2usize..=4)).prop_map(
        |(seed, (inputs, gates, max_fanin))| {
            (
                seed,
                RandomCircuitConfig {
                    inputs,
                    gates,
                    max_fanin,
                },
            )
        },
    )
}

/// Both fault models, deterministically capped.
fn mixed_universe(circuit: &Circuit) -> Vec<Fault> {
    let mut faults: Vec<Fault> = checkpoint_faults(circuit)
        .into_iter()
        .map(Fault::from)
        .collect();
    for kind in [BridgeKind::And, BridgeKind::Or] {
        faults.extend(
            enumerate_nfbfs(circuit, kind)
                .into_iter()
                .take(15)
                .map(Fault::from),
        );
    }
    faults
}

fn assert_stats_consistent(sweep: &SweepResult) {
    for report in &sweep.shards {
        let s = &report.stats;
        if report.chunks_claimed == 0 {
            // Work stealing can starve a worker entirely; it then never
            // builds an engine and its counters are all default.
            assert_eq!(report.faults_done, 0);
            continue;
        }
        assert_eq!(
            s.unique.hits + s.unique.misses,
            s.unique.lookups,
            "unique counters of shard {}",
            report.shard
        );
        for kind in OpKind::ALL {
            let c = s[kind];
            assert_eq!(
                c.hits + c.misses,
                c.lookups,
                "{kind:?} counters of shard {}",
                report.shard
            );
        }
        let total = s.op_total();
        assert_eq!(total.hits + total.misses, total.lookups);
        // Every unique-table miss allocates exactly one node and nothing
        // else does, so the peak is bracketed by the starting table (the
        // frozen base for a shared-snapshot worker, the lone terminal
        // otherwise) plus the total ever allocated — and equals it while no
        // gc compacted.
        let floor = s.base_nodes.max(1) as u64;
        assert!(s.peak_nodes as u64 >= floor, "peak below the starting table");
        assert!(s.peak_nodes as u64 <= floor + s.unique.misses);
        if s.gc_runs == 0 {
            assert_eq!(s.peak_nodes as u64, floor + s.unique.misses);
        }
    }
}

/// Two poisoned classes at distant queue positions in one worker's queue:
/// the old `Option<String>` shard field kept only the first panic message,
/// so the second death was invisible. `ShardReport::panics` must record
/// both class ids with their messages, and neither as the unattributed
/// worker-level sentinel.
#[test]
fn every_panicked_class_is_reported() {
    use diffprop::core::WORKER_PANIC;
    use diffprop::netlist::generators::alu74181;

    let circuit = random_circuit(
        7,
        RandomCircuitConfig {
            inputs: 4,
            gates: 12,
            max_fanin: 3,
        },
    );
    let mut faults = mixed_universe(&circuit);
    let healthy = faults.len();
    // Faults referencing nets of a *different* circuit panic the engine
    // (index out of bounds) — one at each end of the queue, so a serial
    // sweep sees the second panic long after the first.
    let alu = alu74181();
    let mut foreign = checkpoint_faults(&alu);
    let f1 = Fault::from(foreign.pop().expect("alu has faults"));
    let f2 = Fault::from(foreign.pop().expect("alu has more faults"));
    faults.insert(0, f1);
    faults.push(f2);

    let sweep = analyze_universe(&circuit, &faults, EngineConfig::default(), Parallelism::Serial);
    assert!(!sweep.is_complete());
    let panics = sweep.panicked_classes();
    assert_eq!(panics.len(), 2, "both poisoned classes reported: {panics:?}");
    assert_ne!(panics[0].0, panics[1].0, "distinct class ids");
    for (id, msg) in panics {
        assert_ne!(*id, WORKER_PANIC, "panic attributed to its class");
        assert!(!msg.is_empty(), "panic message captured");
    }
    // Every healthy fault still has its summary.
    assert_eq!(sweep.summaries.len(), healthy);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_sweeps_are_byte_identical((seed, cfg) in config_strategy()) {
        let circuit = random_circuit(seed, cfg);
        let faults = mixed_universe(&circuit);
        let config = EngineConfig::default();
        let serial = analyze_universe(&circuit, &faults, config, Parallelism::Serial);
        prop_assert_eq!(serial.summaries.len(), faults.len());
        assert_stats_consistent(&serial);
        for n in [1usize, 2, 4] {
            let sharded = analyze_universe(&circuit, &faults, config, Parallelism::Threads(n));
            prop_assert_eq!(sharded.summaries.len(), faults.len(), "threads={}", n);
            for (s, t) in serial.summaries.iter().zip(&sharded.summaries) {
                prop_assert_eq!(s.fault, t.fault, "threads={}", n);
                prop_assert_eq!(
                    s.detectability.to_bits(),
                    t.detectability.to_bits(),
                    "detectability of {} at threads={}", s.fault, n
                );
                prop_assert_eq!(s.test_count, t.test_count, "threads={}", n);
                prop_assert_eq!(
                    &s.observable_outputs,
                    &t.observable_outputs,
                    "threads={}", n
                );
                prop_assert_eq!(s.site_function_constant, t.site_function_constant);
                prop_assert_eq!(
                    s.adherence.map(f64::to_bits),
                    t.adherence.map(f64::to_bits),
                    "adherence of {} at threads={}", s.fault, n
                );
            }
            // Workers partition the universe without loss: every fault is
            // summarised once, every class propagated once.
            prop_assert_eq!(
                sharded.shards.iter().map(|r| r.faults_done).sum::<usize>(),
                faults.len()
            );
            prop_assert_eq!(
                sharded.shards.iter().map(|r| r.classes_done).sum::<usize>(),
                sharded.classes
            );
            assert_stats_consistent(&sharded);
        }
    }

    #[test]
    fn engine_manager_stats_stay_consistent((seed, cfg) in config_strategy()) {
        let circuit = random_circuit(seed, cfg);
        let mut dp = DiffProp::new(&circuit);
        for fault in mixed_universe(&circuit).into_iter().take(10) {
            let _ = dp.analyze(&fault);
        }
        let manager = dp.good().manager();
        let s = manager.stats();
        prop_assert_eq!(s.unique.hits + s.unique.misses, s.unique.lookups);
        for kind in OpKind::ALL {
            let c = s[kind];
            prop_assert_eq!(c.hits + c.misses, c.lookups);
        }
        // The live node table can never exceed the recorded peak.
        prop_assert!(s.peak_nodes >= manager.num_nodes());
    }
}
