//! Property tests for structural fault collapsing.
//!
//! The collapser's claim is *equivalence*, not mere dominance: every member
//! of a class has the same faulty behaviour at every primary output. On a
//! shared BDD manager with gc suppressed (so `NodeId`s stay valid across
//! analyses) OBDD canonicity turns that into a machine-checkable identity —
//! each member's complete test set must hash-cons to the **same node** as
//! its representative's, per output and in union. On top of the node-level
//! identity, the sweep's expanded summaries must match a direct
//! fault-by-fault analysis bit for bit (f64s via `to_bits`), including the
//! per-member adherence that is *not* shared across a class.

use diffprop::core::{
    analyze_universe, DiffProp, EngineConfig, Parallelism,
};
use diffprop::faults::{collapse_faults, Fault, FaultSite, StuckAtFault};
use diffprop::netlist::generators::{random_circuit, RandomCircuitConfig};
use diffprop::netlist::Circuit;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = (u64, RandomCircuitConfig)> {
    (any::<u64>(), (2usize..=6, 4usize..=20, 2usize..=4)).prop_map(
        |(seed, (inputs, gates, max_fanin))| {
            (
                seed,
                RandomCircuitConfig {
                    inputs,
                    gates,
                    max_fanin,
                },
            )
        },
    )
}

/// Both polarities on every net and every fanout branch — the universe with
/// the densest equivalence structure.
fn pin_universe(circuit: &Circuit) -> Vec<Fault> {
    let mut faults = Vec::new();
    for net in circuit.nets() {
        for value in [false, true] {
            faults.push(Fault::from(StuckAtFault {
                site: FaultSite::Net(net),
                value,
            }));
        }
    }
    for branch in circuit.fanout_branches() {
        for value in [false, true] {
            faults.push(Fault::from(StuckAtFault {
                site: FaultSite::Branch(branch),
                value,
            }));
        }
    }
    faults
}

/// An engine that never garbage-collects, so `NodeId`s from earlier
/// analyses remain comparable.
fn gc_free_engine(circuit: &Circuit) -> DiffProp<'_> {
    DiffProp::with_config(
        circuit,
        EngineConfig {
            gc_threshold: usize::MAX,
            gc_growth: f64::INFINITY,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Node-level equivalence: same manager, no gc — every member's test
    /// set is the *same BDD node* as its representative's, at every output.
    #[test]
    fn class_members_share_the_representatives_test_set_node(
        (seed, cfg) in config_strategy()
    ) {
        let circuit = random_circuit(seed, cfg);
        let faults = pin_universe(&circuit);
        let collapsed = collapse_faults(&circuit, &faults);
        prop_assert_eq!(collapsed.num_faults, faults.len());
        let mut dp = gc_free_engine(&circuit);
        for class in &collapsed.classes {
            let rep = dp.analyze(&faults[class.representative]);
            for &m in &class.members {
                let member = dp.analyze(&faults[m]);
                prop_assert_eq!(
                    member.test_set, rep.test_set,
                    "test set of {} differs from representative {}",
                    faults[m], faults[class.representative]
                );
                prop_assert_eq!(
                    &member.po_deltas, &rep.po_deltas,
                    "a PO delta of {} differs from representative {}",
                    faults[m], faults[class.representative]
                );
            }
        }
    }

    /// Summary-level identity: the collapsed sweep's expanded rows equal a
    /// direct per-fault analysis, bit for bit — adherence included.
    #[test]
    fn expanded_summaries_match_direct_analysis((seed, cfg) in config_strategy()) {
        let circuit = random_circuit(seed, cfg);
        let faults = pin_universe(&circuit);
        let sweep = analyze_universe(
            &circuit,
            &faults,
            EngineConfig::default(),
            Parallelism::Serial,
        );
        prop_assert!(sweep.classes <= faults.len());
        prop_assert_eq!(sweep.summaries.len(), faults.len());
        let mut dp = DiffProp::new(&circuit);
        for (fault, summary) in faults.iter().zip(&sweep.summaries) {
            let direct = dp.analyze(fault);
            prop_assert_eq!(&summary.fault, fault);
            prop_assert_eq!(
                summary.detectability.to_bits(),
                direct.detectability.to_bits(),
                "detectability of {}", fault
            );
            prop_assert_eq!(summary.test_count, direct.test_count, "{}", fault);
            prop_assert_eq!(
                &summary.observable_outputs,
                &direct.observable_outputs,
                "{}", fault
            );
            prop_assert_eq!(summary.site_function_constant, direct.site_function_constant);
            let adherence = dp.adherence(&direct);
            prop_assert_eq!(
                summary.adherence.map(f64::to_bits),
                adherence.map(f64::to_bits),
                "adherence of {}", fault
            );
        }
    }
}
