//! Schema stability for `sweep_report.json`.
//!
//! Two layers:
//!
//! * A golden key-path snapshot: the set of distinct JSON key paths in a
//!   real report (values and array multiplicity erased) is pinned in
//!   `tests/golden/sweep_report_schema.txt`. Renaming, moving, or deleting
//!   a field fails here; so does adding one — deliberate additive changes
//!   regenerate the file with `DP_UPDATE_GOLDEN=1` (and stay within
//!   [`SCHEMA_VERSION`]; incompatible changes must bump it).
//! * A differential check: re-running the same sweep with different thread
//!   and chunk counts may change `execution.*` freely, but must leave the
//!   whole `result` subtree — fault counts, class structure, exact/bounded
//!   split, and the FNV digest of every summary line — identical.

mod common;

use common::stuck_at_universe;
use diffprop::core::{sweep_report, sweep_universe, Parallelism, SweepConfig};
use diffprop::netlist::generators::c95;
use diffprop::telemetry::{key_paths, parse_and_validate, ReportFile, SweepReport};

const SCHEMA_GOLDEN_PATH: &str = "tests/golden/sweep_report_schema.txt";

/// A real end-to-end report: c95's collapsed checkpoint universe, swept by
/// the work-stealing path so `execution.shards` has several entries.
fn real_report(parallelism: Parallelism, chunk: Option<usize>) -> SweepReport {
    let circuit = c95();
    let faults = stuck_at_universe(&circuit);
    let config = SweepConfig {
        parallelism,
        chunk,
        ..Default::default()
    };
    let sweep = sweep_universe(&circuit, &faults, &config);
    sweep_report(circuit.name(), "stuck-at", &sweep)
}

#[test]
fn report_schema_matches_golden_key_paths() {
    let mut file = ReportFile::new("tests/telemetry_schema");
    file.reports.push(real_report(Parallelism::Threads(2), None));
    let text = file.to_pretty_string();

    // The serialised document must satisfy its own validator.
    let doc = parse_and_validate(&text).expect("emitted report failed schema validation");

    let lines: Vec<String> = key_paths(&doc);
    if std::env::var_os("DP_UPDATE_GOLDEN").is_some() {
        std::fs::write(SCHEMA_GOLDEN_PATH, lines.join("\n") + "\n").expect("write schema golden");
        return;
    }
    let golden = std::fs::read_to_string(SCHEMA_GOLDEN_PATH)
        .expect("schema golden missing; run with DP_UPDATE_GOLDEN=1 to capture");
    let golden: Vec<&str> = golden.lines().collect();
    assert_eq!(
        golden, lines,
        "sweep_report.json key paths drifted; if the change is a deliberate \
         additive evolution, regenerate with DP_UPDATE_GOLDEN=1 (incompatible \
         changes must bump SCHEMA_VERSION)"
    );
}

#[test]
fn result_subtree_is_invariant_under_scheduling_changes() {
    let baseline = real_report(Parallelism::Serial, None);
    for (parallelism, chunk) in [
        (Parallelism::Serial, Some(1)),
        (Parallelism::Threads(2), None),
        (Parallelism::Threads(4), Some(1)),
        (Parallelism::Threads(3), Some(7)),
    ] {
        let other = real_report(parallelism, chunk);
        assert_eq!(
            baseline.result, other.result,
            "result subtree changed under {parallelism:?} chunk={chunk:?}"
        );
        // The execution record is the part that is *supposed* to move.
        assert_eq!(other.execution.threads, parallelism.workers().max(1) as u32);
        if let Some(c) = chunk {
            assert_eq!(other.execution.chunk, c as u32);
        }
    }
}
