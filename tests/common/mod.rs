//! Golden-file helpers shared by the integration test binaries.
//!
//! `tests/golden/universe_summaries.tsv` pins the engine's output
//! bit-for-bit: every `f64` is recorded via `to_bits`, so matching the file
//! proves a refactor left the analysis byte-identical — not merely "close".
//! `tests/differential.rs` owns the file (and its regeneration switch);
//! `tests/telemetry_invariance.rs` replays the same universes with
//! collectors attached to prove telemetry is observation-only.

// Each test binary compiles its own copy of this module and uses a subset
// of the helpers.
#![allow(dead_code)]

use diffprop::core::{sweep_universe, FaultOutcome, FaultSummary, SweepConfig};
use diffprop::faults::{
    checkpoint_faults, enumerate_bridges, enumerate_nfbfs, pair_multis, BridgeKind,
    BridgeTopology, Fault,
};
use diffprop::netlist::generators::{c17, c95, full_adder};
use diffprop::netlist::Circuit;
use diffprop::sim::ternary_exhaustive_detectability;

/// Where the golden summaries live, relative to the workspace root (the
/// working directory of integration tests).
pub const GOLDEN_PATH: &str = "tests/golden/universe_summaries.tsv";

/// One summary, serialised losslessly (f64s as hex bit patterns).
pub fn summary_line(circuit: &str, model: &str, idx: usize, s: &FaultSummary) -> String {
    let obs: String = s
        .observable_outputs
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect();
    let adherence = match s.adherence {
        Some(a) => format!("{:016x}", a.to_bits()),
        None => "-".to_string(),
    };
    let count = match s.test_count {
        Some(c) => c.to_string(),
        None => "-".to_string(),
    };
    let outcome = match s.outcome {
        FaultOutcome::Exact => "exact".to_string(),
        FaultOutcome::Bounded { samples } => format!("bounded:{samples}"),
        FaultOutcome::Oscillating { density_bits } => {
            format!("oscillating:{density_bits:016x}")
        }
    };
    format!(
        "{circuit}\t{model}\t{idx}\t{}\t{count}\t{:016x}\t{adherence}\t{obs}\t{}\t{outcome}",
        s.fault,
        s.detectability.to_bits(),
        s.site_function_constant as u8
    )
}

/// The collapsed checkpoint stuck-at universe of a circuit.
pub fn stuck_at_universe(circuit: &Circuit) -> Vec<Fault> {
    checkpoint_faults(circuit)
        .into_iter()
        .map(Fault::from)
        .collect()
}

/// AND and OR NFBFs, capped per kind. Deterministic enumeration order makes
/// the capped slice stable.
pub fn bridging_universe(circuit: &Circuit, cap: usize) -> Vec<Fault> {
    let mut faults = Vec::new();
    for kind in [BridgeKind::And, BridgeKind::Or] {
        faults.extend(
            enumerate_nfbfs(circuit, kind)
                .into_iter()
                .take(cap)
                .map(Fault::from),
        );
    }
    faults
}

/// AND and OR *feedback* bridges — one wire in the other's fanout cone —
/// capped per kind. The engine routes these through its ternary fixpoint.
pub fn feedback_universe(circuit: &Circuit, cap: usize) -> Vec<Fault> {
    let mut faults = Vec::new();
    for kind in [BridgeKind::And, BridgeKind::Or] {
        faults.extend(
            enumerate_bridges(circuit, kind, BridgeTopology::Feedback)
                .into_iter()
                .take(cap)
                .map(Fault::from),
        );
    }
    faults
}

/// Double stuck-at faults from the all-pairs checkpoint universe, capped.
/// `pair_multis` enumerates deterministically, so the capped slice is
/// stable.
pub fn multi_universe(circuit: &Circuit, cap: usize) -> Vec<Fault> {
    pair_multis(circuit)
        .into_iter()
        .take(cap)
        .map(Fault::from)
        .collect()
}

/// The golden circuit set by name (the TSV's first column).
pub fn golden_circuit(name: &str) -> Circuit {
    match name {
        "c17" => c17(),
        "full_adder" => full_adder(),
        "c95" => c95(),
        other => panic!("unknown golden circuit {other}"),
    }
}

/// Every `(circuit, model, universe)` triple recorded in the golden file,
/// in file order.
pub fn golden_universes() -> Vec<(String, &'static str, Vec<Fault>)> {
    let mut out = Vec::new();
    for circuit in [c17(), full_adder(), c95()] {
        let name = circuit.name().to_string();
        out.push((name.clone(), "stuck", stuck_at_universe(&circuit)));
        // Same deterministic cap as the oracle tests keeps this fast on c95.
        let cap = if circuit.num_inputs() > 8 { 120 } else { usize::MAX };
        out.push((name.clone(), "bridge", bridging_universe(&circuit, cap)));
        // The extended models ride the same file: feedback bridges pin the
        // ternary fixpoint (including each oscillation density, via the
        // outcome column), double stuck-ats pin multi-fault composition.
        let fb_cap = if circuit.num_inputs() > 8 { 40 } else { usize::MAX };
        out.push((name.clone(), "fbridge", feedback_universe(&circuit, fb_cap)));
        let multi_cap = if circuit.num_inputs() > 8 { 120 } else { usize::MAX };
        out.push((name, "multi", multi_universe(&circuit, multi_cap)));
    }
    out
}

/// Sweeps every golden universe under `config` (its `parallelism`,
/// `telemetry`, collapse setting, ... all apply) and serialises the
/// summaries as golden TSV lines.
pub fn current_golden_lines(config: &SweepConfig) -> Vec<String> {
    let mut lines = Vec::new();
    for (name, model, faults) in golden_universes() {
        let circuit = golden_circuit(&name);
        let sweep = sweep_universe(&circuit, &faults, config);
        for (idx, summary) in sweep.summaries.iter().enumerate() {
            lines.push(summary_line(&name, model, idx, summary));
        }
    }
    lines
}

/// Model-generic oracle check: sweeps `faults` under `config` and demands
/// that every summary — detectability, exact test count, and (for feedback
/// bridges) the oscillation density — equals what the independent packed
/// ternary simulator computes by exhausting all `2^n` vectors.
///
/// The simulator shares no code with the engine's BDD path and converges to
/// the same least fixpoint per vector, so agreement here pins every fault
/// model (single/multiple stuck-at, non-feedback and feedback bridges) to
/// one reference semantics.
pub fn assert_matches_ternary_oracle(circuit: &Circuit, faults: &[Fault], config: &SweepConfig) {
    assert!(!faults.is_empty(), "empty universe on {}", circuit.name());
    let total = 1u128 << circuit.num_inputs();
    let sweep = sweep_universe(circuit, faults, config);
    assert_eq!(sweep.summaries.len(), faults.len());
    for (fault, s) in faults.iter().zip(&sweep.summaries) {
        let t = ternary_exhaustive_detectability(circuit, fault);
        assert_eq!(
            s.test_count,
            Some(u128::from(t.detected)),
            "test_count for {fault} on {}",
            circuit.name()
        );
        // count / 2^n is exact in f64 at these sizes: demand bit equality.
        assert_eq!(
            s.detectability.to_bits(),
            (t.detected as f64 / total as f64).to_bits(),
            "detectability for {fault} on {}",
            circuit.name()
        );
        match s.outcome {
            FaultOutcome::Exact => {
                assert_eq!(t.oscillating, 0, "{fault}: simulator saw oscillation, engine none");
            }
            FaultOutcome::Oscillating { density_bits } => {
                assert!(t.oscillating > 0, "{fault}: engine oscillates, simulator settles");
                assert_eq!(
                    density_bits,
                    (t.oscillating as f64 / total as f64).to_bits(),
                    "oscillation density for {fault} on {}",
                    circuit.name()
                );
            }
            FaultOutcome::Bounded { .. } => {
                panic!("{fault}: bounded summary in an unbudgeted oracle sweep")
            }
        }
    }
}

/// Asserts `lines` equals the committed golden file, line by line.
pub fn assert_matches_golden(lines: &[String]) {
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; run with DP_UPDATE_GOLDEN=1 to capture");
    let golden: Vec<&str> = golden.lines().collect();
    assert_eq!(
        golden.len(),
        lines.len(),
        "universe size changed; engine no longer enumerates the golden faults"
    );
    for (want, got) in golden.iter().zip(lines) {
        assert_eq!(want, got, "summary drifted from the committed golden file");
    }
}
