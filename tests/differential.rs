//! Differential test layer: Difference Propagation vs brute-force truth.
//!
//! For c17, the full adder and c95, and for both fault models (checkpoint
//! stuck-at faults and AND/OR NFBFs), DP's exact `test_count` and
//! per-output observability sets must equal, fault by fault, a ground truth
//! computed by scalar exhaustive simulation of every input vector. The
//! scalar simulator shares no code with the engine's BDD path (and is
//! cross-checked here against the bit-parallel `exhaustive_detectability`),
//! so agreement pins the whole DP pipeline — good functions, Table-1
//! propagation, counting — to an independent oracle.

use diffprop::core::{analyze_universe, EngineConfig, Parallelism};
use diffprop::faults::{checkpoint_faults, enumerate_nfbfs, BridgeKind, Fault};
use diffprop::netlist::generators::{c17, c95, full_adder};
use diffprop::netlist::Circuit;
use diffprop::sim::{exhaustive_detectability, faulty_outputs};

/// Per-fault brute-force truth: exact detecting-vector count and the set of
/// outputs where the fault is ever visible.
struct GroundTruth {
    count: u128,
    observable: Vec<bool>,
}

/// Good outputs for every input vector, indexed by the vector's bit pattern.
fn good_output_table(circuit: &Circuit) -> Vec<Vec<bool>> {
    let n = circuit.num_inputs();
    (0..1u64 << n)
        .map(|bits| circuit.eval(&to_vector(bits, n)))
        .collect()
}

fn to_vector(bits: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| bits >> i & 1 == 1).collect()
}

fn ground_truth(circuit: &Circuit, fault: &Fault, good: &[Vec<bool>]) -> GroundTruth {
    let n = circuit.num_inputs();
    let mut count = 0u128;
    let mut observable = vec![false; circuit.num_outputs()];
    for bits in 0..1u64 << n {
        let bad = faulty_outputs(circuit, fault, &to_vector(bits, n));
        let mut any = false;
        for (k, flag) in observable.iter_mut().enumerate() {
            if good[bits as usize][k] != bad[k] {
                *flag = true;
                any = true;
            }
        }
        if any {
            count += 1;
        }
    }
    GroundTruth { count, observable }
}

/// Runs the sweep and checks every fault against the oracle.
fn check_universe(circuit: &Circuit, faults: &[Fault]) {
    assert!(!faults.is_empty(), "empty universe on {}", circuit.name());
    let n = circuit.num_inputs();
    let total = 1u128 << n;
    let good = good_output_table(circuit);
    let sweep = analyze_universe(circuit, faults, EngineConfig::default(), Parallelism::Serial);
    for (fault, summary) in faults.iter().zip(&sweep.summaries) {
        let truth = ground_truth(circuit, fault, &good);
        assert_eq!(
            summary.test_count,
            Some(truth.count),
            "test_count for {fault} on {}",
            circuit.name()
        );
        assert_eq!(
            summary.observable_outputs, truth.observable,
            "observable outputs for {fault} on {}",
            circuit.name()
        );
        // count / 2^n is exact in f64 for these sizes, so demand bit equality.
        assert_eq!(
            summary.detectability.to_bits(),
            (truth.count as f64 / total as f64).to_bits(),
            "detectability for {fault} on {}",
            circuit.name()
        );
        // The two independent simulators must also agree with each other.
        let (det, tot) = exhaustive_detectability(circuit, fault);
        assert_eq!(det as u128, truth.count, "simulators disagree on {fault}");
        assert_eq!(tot as u128, total);
        if matches!(fault, Fault::StuckAt(_)) {
            assert!(summary.site_function_constant, "{fault} site not constant");
        }
    }
}

fn stuck_at_universe(circuit: &Circuit) -> Vec<Fault> {
    checkpoint_faults(circuit)
        .into_iter()
        .map(Fault::from)
        .collect()
}

fn bridging_universe(circuit: &Circuit, cap: usize) -> Vec<Fault> {
    let mut faults = Vec::new();
    for kind in [BridgeKind::And, BridgeKind::Or] {
        // Deterministic enumeration order makes the capped slice stable.
        faults.extend(
            enumerate_nfbfs(circuit, kind)
                .into_iter()
                .take(cap)
                .map(Fault::from),
        );
    }
    faults
}

// ---------------------------------------------------------------------------
// Golden summaries: the engine's output pinned bit-for-bit across refactors.
//
// `tests/golden/universe_summaries.tsv` was captured from the serial sweep
// before the complement-edge BDD refactor. Every `f64` is recorded via
// `to_bits`, so this layer proves that internal representation changes
// (complement edges, ITE-normalized caching, ...) leave the analysis output
// bit-identical — not merely "close". Regenerate deliberately with
// `DP_UPDATE_GOLDEN=1 cargo test -q --test differential golden`.
// ---------------------------------------------------------------------------

const GOLDEN_PATH: &str = "tests/golden/universe_summaries.tsv";

/// One summary, serialised losslessly (f64s as hex bit patterns).
fn summary_line(circuit: &str, model: &str, idx: usize, s: &diffprop::core::FaultSummary) -> String {
    let obs: String = s
        .observable_outputs
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect();
    let adherence = match s.adherence {
        Some(a) => format!("{:016x}", a.to_bits()),
        None => "-".to_string(),
    };
    let count = match s.test_count {
        Some(c) => c.to_string(),
        None => "-".to_string(),
    };
    format!(
        "{circuit}\t{model}\t{idx}\t{}\t{count}\t{:016x}\t{adherence}\t{obs}\t{}",
        s.fault,
        s.detectability.to_bits(),
        s.site_function_constant as u8
    )
}

fn golden_universes() -> Vec<(String, &'static str, Vec<Fault>)> {
    let mut out = Vec::new();
    for circuit in [c17(), full_adder(), c95()] {
        let name = circuit.name().to_string();
        out.push((name.clone(), "stuck", stuck_at_universe(&circuit)));
        // Same deterministic cap as the oracle tests keeps this fast on c95.
        let cap = if circuit.num_inputs() > 8 { 120 } else { usize::MAX };
        out.push((name, "bridge", bridging_universe(&circuit, cap)));
    }
    out
}

fn current_golden_lines(parallelism: Parallelism) -> Vec<String> {
    let mut lines = Vec::new();
    for (name, model, faults) in golden_universes() {
        let circuit = match name.as_str() {
            "c17" => c17(),
            "full_adder" => full_adder(),
            "c95" => c95(),
            other => panic!("unknown golden circuit {other}"),
        };
        let sweep = analyze_universe(&circuit, &faults, EngineConfig::default(), parallelism);
        for (idx, summary) in sweep.summaries.iter().enumerate() {
            lines.push(summary_line(&name, model, idx, summary));
        }
    }
    lines
}

fn assert_matches_golden(lines: &[String]) {
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; run with DP_UPDATE_GOLDEN=1 to capture");
    let golden: Vec<&str> = golden.lines().collect();
    assert_eq!(
        golden.len(),
        lines.len(),
        "universe size changed; engine no longer enumerates the golden faults"
    );
    for (want, got) in golden.iter().zip(lines) {
        assert_eq!(want, got, "summary drifted from pre-complement-edge golden");
    }
}

#[test]
fn golden_universe_summaries_are_bit_identical() {
    let lines = current_golden_lines(Parallelism::Serial);
    if std::env::var_os("DP_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, lines.join("\n") + "\n").expect("write golden file");
        return;
    }
    assert_matches_golden(&lines);
}

/// The same golden file, reproduced by the work-stealing sweep at four
/// workers: scheduling (which worker claims which chunk, in what
/// interleaving) must leave every byte of the output unchanged.
#[test]
fn golden_universe_summaries_are_bit_identical_at_four_threads() {
    assert_matches_golden(&current_golden_lines(Parallelism::Threads(4)));
}

#[test]
fn c17_stuck_at_matches_exhaustive() {
    let c = c17();
    check_universe(&c, &stuck_at_universe(&c));
}

#[test]
fn c17_bridging_matches_exhaustive() {
    let c = c17();
    check_universe(&c, &bridging_universe(&c, usize::MAX));
}

#[test]
fn full_adder_stuck_at_matches_exhaustive() {
    let c = full_adder();
    check_universe(&c, &stuck_at_universe(&c));
}

#[test]
fn full_adder_bridging_matches_exhaustive() {
    let c = full_adder();
    check_universe(&c, &bridging_universe(&c, usize::MAX));
}

#[test]
fn c95_stuck_at_matches_exhaustive() {
    let c = c95();
    check_universe(&c, &stuck_at_universe(&c));
}

#[test]
fn c95_bridging_matches_exhaustive() {
    let c = c95();
    // c95's NFBF sets are large; a deterministic 120-per-kind slice keeps
    // the oracle (512 vectors x scalar resimulation per fault) affordable.
    check_universe(&c, &bridging_universe(&c, 120));
}
