//! Differential test layer: Difference Propagation vs brute-force truth.
//!
//! For c17, the full adder and c95, and for every fault model (checkpoint
//! stuck-at faults, AND/OR NFBFs, feedback bridges, and double stuck-at
//! faults), DP's exact `test_count` and per-output observability sets must
//! equal, fault by fault, a ground truth computed by exhaustive simulation
//! of every input vector. Acyclic models use the scalar binary simulator
//! (cross-checked here against the bit-parallel
//! `exhaustive_detectability`); feedback bridges use the packed *ternary*
//! simulator, whose per-vector Gauss-Seidel fixpoint is the independent
//! realisation of the same 0/1/X semantics the engine computes
//! symbolically. Agreement pins the whole DP pipeline — good functions,
//! Table-1 propagation, the ternary fixpoint, counting — to oracles that
//! share no code with it.

mod common;

use common::{
    assert_matches_golden, assert_matches_ternary_oracle, bridging_universe, current_golden_lines,
    feedback_universe, multi_universe, stuck_at_universe, GOLDEN_PATH,
};
use diffprop::core::{
    analyze_universe, plan_batches, sweep_universe, DiffProp, EngineConfig, OrderStrategy,
    Parallelism, SweepConfig,
};
use diffprop::faults::{collapse_faults, Fault};
use diffprop::netlist::generators::{alu74181, c17, c432_surrogate, c499_surrogate, c95, full_adder};
use diffprop::netlist::{Circuit, Reachability};
use diffprop::sim::{detects, exhaustive_detectability, faulty_outputs};

/// Per-fault brute-force truth: exact detecting-vector count and the set of
/// outputs where the fault is ever visible.
struct GroundTruth {
    count: u128,
    observable: Vec<bool>,
}

/// Good outputs for every input vector, indexed by the vector's bit pattern.
fn good_output_table(circuit: &Circuit) -> Vec<Vec<bool>> {
    let n = circuit.num_inputs();
    (0..1u64 << n)
        .map(|bits| circuit.eval(&to_vector(bits, n)))
        .collect()
}

fn to_vector(bits: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| bits >> i & 1 == 1).collect()
}

fn ground_truth(circuit: &Circuit, fault: &Fault, good: &[Vec<bool>]) -> GroundTruth {
    let n = circuit.num_inputs();
    let mut count = 0u128;
    let mut observable = vec![false; circuit.num_outputs()];
    for bits in 0..1u64 << n {
        let bad = faulty_outputs(circuit, fault, &to_vector(bits, n));
        let mut any = false;
        for (k, flag) in observable.iter_mut().enumerate() {
            if good[bits as usize][k] != bad[k] {
                *flag = true;
                any = true;
            }
        }
        if any {
            count += 1;
        }
    }
    GroundTruth { count, observable }
}

/// Runs the sweep and checks every fault against the oracle.
fn check_universe(circuit: &Circuit, faults: &[Fault]) {
    assert!(!faults.is_empty(), "empty universe on {}", circuit.name());
    let n = circuit.num_inputs();
    let total = 1u128 << n;
    let good = good_output_table(circuit);
    let sweep = analyze_universe(circuit, faults, EngineConfig::default(), Parallelism::Serial);
    for (fault, summary) in faults.iter().zip(&sweep.summaries) {
        let truth = ground_truth(circuit, fault, &good);
        assert_eq!(
            summary.test_count,
            Some(truth.count),
            "test_count for {fault} on {}",
            circuit.name()
        );
        assert_eq!(
            summary.observable_outputs, truth.observable,
            "observable outputs for {fault} on {}",
            circuit.name()
        );
        // count / 2^n is exact in f64 for these sizes, so demand bit equality.
        assert_eq!(
            summary.detectability.to_bits(),
            (truth.count as f64 / total as f64).to_bits(),
            "detectability for {fault} on {}",
            circuit.name()
        );
        // The two independent simulators must also agree with each other.
        let (det, tot) = exhaustive_detectability(circuit, fault);
        assert_eq!(det as u128, truth.count, "simulators disagree on {fault}");
        assert_eq!(tot as u128, total);
        if matches!(fault, Fault::StuckAt(_)) {
            assert!(summary.site_function_constant, "{fault} site not constant");
        }
    }
}

// ---------------------------------------------------------------------------
// Golden summaries: the engine's output pinned bit-for-bit across refactors.
//
// `tests/golden/universe_summaries.tsv` was captured from the serial sweep
// before the complement-edge BDD refactor. The serialisation and universe
// enumeration live in `tests/common/mod.rs` (shared with the telemetry
// invariance layer). Regenerate deliberately with
// `DP_UPDATE_GOLDEN=1 cargo test -q --test differential golden`.
// ---------------------------------------------------------------------------

fn sweep_config(parallelism: Parallelism) -> SweepConfig {
    SweepConfig {
        parallelism,
        ..Default::default()
    }
}

#[test]
fn golden_universe_summaries_are_bit_identical() {
    let lines = current_golden_lines(&sweep_config(Parallelism::Serial));
    if std::env::var_os("DP_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, lines.join("\n") + "\n").expect("write golden file");
        return;
    }
    assert_matches_golden(&lines);
}

/// The same golden file, reproduced by the work-stealing sweep at four
/// workers: scheduling (which worker claims which chunk, in what
/// interleaving) must leave every byte of the output unchanged.
#[test]
fn golden_universe_summaries_are_bit_identical_at_four_threads() {
    assert_matches_golden(&current_golden_lines(&sweep_config(Parallelism::Threads(4))));
}

#[test]
fn c17_stuck_at_matches_exhaustive() {
    let c = c17();
    check_universe(&c, &stuck_at_universe(&c));
}

#[test]
fn c17_bridging_matches_exhaustive() {
    let c = c17();
    check_universe(&c, &bridging_universe(&c, usize::MAX));
}

#[test]
fn full_adder_stuck_at_matches_exhaustive() {
    let c = full_adder();
    check_universe(&c, &stuck_at_universe(&c));
}

#[test]
fn full_adder_bridging_matches_exhaustive() {
    let c = full_adder();
    check_universe(&c, &bridging_universe(&c, usize::MAX));
}

#[test]
fn c95_stuck_at_matches_exhaustive() {
    let c = c95();
    check_universe(&c, &stuck_at_universe(&c));
}

#[test]
fn c95_bridging_matches_exhaustive() {
    let c = c95();
    // c95's NFBF sets are large; a deterministic 120-per-kind slice keeps
    // the oracle (512 vectors x scalar resimulation per fault) affordable.
    check_universe(&c, &bridging_universe(&c, 120));
}

// ---------------------------------------------------------------------------
// Extended fault models vs the ternary reference simulator.
//
// Feedback bridges close a structural loop, so the binary oracle above no
// longer applies: both the engine (symbolically) and the packed ternary
// simulator (vector by vector) compute the least fixpoint of the 0/1/X
// loop, from entirely separate code. `assert_matches_ternary_oracle`
// demands bit-equal detectability, test counts, and oscillation densities.
// Double stuck-at faults are acyclic, so they get both oracles: the
// exhaustive binary multi-fault simulation (via `check_universe`) and the
// ternary runner.
// ---------------------------------------------------------------------------

#[test]
fn c17_feedback_bridging_matches_ternary_oracle() {
    let c = c17();
    let faults = feedback_universe(&c, usize::MAX);
    assert_matches_ternary_oracle(&c, &faults, &sweep_config(Parallelism::Serial));
}

#[test]
fn c95_feedback_bridging_matches_ternary_oracle() {
    let c = c95();
    // Capped per kind: the oracle runs 2^9 vectors through a Gauss-Seidel
    // fixpoint per fault.
    let faults = feedback_universe(&c, 40);
    assert_matches_ternary_oracle(&c, &faults, &sweep_config(Parallelism::Serial));
}

#[test]
fn alu74181_sampled_feedback_bridging_matches_ternary_oracle() {
    let c = alu74181();
    // 2^14 vectors per oracle call: an evenly spaced sample keeps this a
    // seconds-scale test while still covering both bridge kinds.
    let universe = feedback_universe(&c, usize::MAX);
    let step = universe.len().div_ceil(12).max(1);
    let faults: Vec<Fault> = universe.into_iter().step_by(step).collect();
    assert_matches_ternary_oracle(&c, &faults, &sweep_config(Parallelism::Serial));
}

#[test]
fn c17_pairwise_multi_matches_exhaustive() {
    let c = c17();
    let faults = multi_universe(&c, usize::MAX);
    // Binary oracle: exact counts and per-output observability.
    check_universe(&c, &faults);
    // Ternary oracle: same counts, and never an oscillation (acyclic model).
    assert_matches_ternary_oracle(&c, &faults, &sweep_config(Parallelism::Serial));
}

#[test]
fn full_adder_pairwise_multi_matches_exhaustive() {
    let c = full_adder();
    let faults = multi_universe(&c, usize::MAX);
    check_universe(&c, &faults);
    assert_matches_ternary_oracle(&c, &faults, &sweep_config(Parallelism::Serial));
}

// ---------------------------------------------------------------------------
// Big-surrogate layer: the ordering heuristics pinned to ground truth.
//
// At 36/41 inputs the exhaustive oracle above (2^n scalar simulations per
// fault) is out of reach, so the surrogates get the feasible projection of
// the same idea, on a deterministic sample of stuck-at faults:
//
// * two *independently ordered* engines (fanin-DFS and interleave resolve
//   to different permutations) must agree bit-for-bit on every exact
//   metric — OBDD canonicity makes shared mistakes across orders
//   essentially impossible;
// * the complete test set of each fault is spot-checked vector-by-vector
//   against the scalar fault simulator (shared-code-free, like the small
//   circuits' oracle): membership in the BDD test set must equal scalar
//   detection for every sampled vector.
// ---------------------------------------------------------------------------

/// Deterministic pseudo-random input vector stream (splitmix64 bits).
fn sampled_vectors(n: usize, count: usize, mut state: u64) -> Vec<Vec<bool>> {
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            let mut v = Vec::with_capacity(n);
            let mut bits = 0u64;
            for i in 0..n {
                if i % 64 == 0 {
                    bits = next();
                }
                v.push(bits >> (i % 64) & 1 == 1);
            }
            v
        })
        .collect()
}

/// An evenly spaced, deterministic sample of at most `cap` universe faults.
fn sampled_faults(circuit: &Circuit, cap: usize) -> Vec<Fault> {
    let universe = stuck_at_universe(circuit);
    let step = universe.len().div_ceil(cap).max(1);
    universe.into_iter().step_by(step).take(cap).collect()
}

fn check_surrogate_sampled(circuit: &Circuit, fault_cap: usize, vectors_per_fault: usize) {
    let faults = sampled_faults(circuit, fault_cap);
    assert!(!faults.is_empty() && faults.len() <= 64);
    let config = |order| EngineConfig {
        order,
        ..Default::default()
    };
    let mut dfs = DiffProp::with_config(circuit, config(OrderStrategy::FaninDfs));
    let mut ilv = DiffProp::with_config(circuit, config(OrderStrategy::Interleave));
    // The two engines really run different permutations.
    assert_ne!(
        dfs.good().manager().order(),
        ilv.good().manager().order(),
        "heuristics coincide on {}; the cross-order check would be vacuous",
        circuit.name()
    );
    let vectors = sampled_vectors(circuit.num_inputs(), vectors_per_fault, 1990);
    for fault in &faults {
        let a = dfs.analyze(fault);
        let b = ilv.analyze(fault);
        assert_eq!(
            a.test_count, b.test_count,
            "orders disagree on test_count for {fault} on {}",
            circuit.name()
        );
        assert_eq!(
            a.detectability.to_bits(),
            b.detectability.to_bits(),
            "orders disagree on detectability for {fault}"
        );
        assert_eq!(
            a.observable_outputs, b.observable_outputs,
            "orders disagree on observability for {fault}"
        );
        assert!(a.site_function_constant, "{fault} site not constant");
        // Scalar oracle: BDD test-set membership == scalar fault detection.
        for v in &vectors {
            assert_eq!(
                dfs.good().manager().eval(a.test_set, v),
                detects(circuit, fault, v),
                "test set of {fault} wrong at a sampled vector on {}",
                circuit.name()
            );
        }
    }
}

#[test]
fn c432s_sampled_stuck_at_matches_scalar_oracle_under_ordering() {
    check_surrogate_sampled(&c432_surrogate(), 48, 96);
}

// ---------------------------------------------------------------------------
// Batch-vs-single layer: cone-disjoint fused propagation is a pure
// scheduling change.
//
// The fused batch path (PR7) analyses several cone-disjoint stuck-at
// faults in one propagation pass. Differentially, every batched summary
// must equal — bit for bit — what a fresh engine computes for the same
// fault alone; and the greedy packer itself must be deterministic and
// sound (pairwise-disjoint cones inside every batch).
// ---------------------------------------------------------------------------

/// Sweeps `faults` with fused batches enabled and checks every summary
/// against a single-fault engine run in isolation.
fn check_batch_vs_single(circuit: &Circuit, faults: &[Fault]) {
    let sweep = sweep_universe(
        circuit,
        faults,
        &SweepConfig {
            batch: 8,
            parallelism: Parallelism::Threads(2),
            ..Default::default()
        },
    );
    assert_eq!(sweep.summaries.len(), faults.len());
    let mut single = DiffProp::new(circuit);
    for (fault, summary) in faults.iter().zip(&sweep.summaries) {
        let alone = single.analyze(fault);
        assert_eq!(
            summary.test_count, alone.test_count,
            "batched test_count for {fault} on {}",
            circuit.name()
        );
        assert_eq!(
            summary.detectability.to_bits(),
            alone.detectability.to_bits(),
            "batched detectability for {fault} on {}",
            circuit.name()
        );
        assert_eq!(
            summary.observable_outputs, alone.observable_outputs,
            "batched observability for {fault} on {}",
            circuit.name()
        );
    }
}

#[test]
fn c95_batched_sweep_matches_single_fault_analyses() {
    let c = c95();
    let mut faults = stuck_at_universe(&c);
    faults.extend(bridging_universe(&c, 20));
    check_batch_vs_single(&c, &faults);
}

#[test]
fn alu74181_batched_sweep_matches_single_fault_analyses() {
    let c = alu74181();
    check_batch_vs_single(&c, &stuck_at_universe(&c));
}

#[test]
fn c432s_sampled_batched_sweep_matches_single_fault_analyses() {
    let c = c432_surrogate();
    check_batch_vs_single(&c, &sampled_faults(&c, 32));
}

#[test]
fn batch_packing_is_deterministic_and_cone_sound() {
    for circuit in [c95(), alu74181()] {
        let faults = stuck_at_universe(&circuit);
        let collapsed = collapse_faults(&circuit, &faults);
        let reach = Reachability::compute(&circuit);
        let batches = plan_batches(&faults, &collapsed.classes, &reach, 8);
        // Deterministic: replanning from scratch yields the same packing.
        let replay = plan_batches(&faults, &collapsed.classes, &reach, 8);
        assert_eq!(batches, replay, "packing is not deterministic");
        // Exact cover of the class list.
        let mut seen: Vec<usize> = batches.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..collapsed.classes.len()).collect::<Vec<_>>());
        // Sound: representatives inside one batch have pairwise-disjoint
        // fanout cones (the condition that makes fusion exact).
        for batch in &batches {
            assert!(batch.len() <= 8);
            for (i, &x) in batch.iter().enumerate() {
                for &y in &batch[i + 1..] {
                    let site = |class: usize| match &faults[collapsed.classes[class].representative]
                    {
                        Fault::StuckAt(f) => match f.site {
                            diffprop::faults::FaultSite::Net(n) => n,
                            diffprop::faults::FaultSite::Branch(b) => b.sink,
                        },
                        Fault::Bridging(_) | Fault::MultiStuckAt(_) => {
                            panic!("multi-site fault packed into a batch")
                        }
                    };
                    assert!(
                        reach.cones_disjoint(site(x), site(y)),
                        "batch on {} packs overlapping cones",
                        circuit.name()
                    );
                }
            }
        }
    }
}

#[test]
fn c499s_sampled_stuck_at_matches_scalar_oracle_under_ordering() {
    check_surrogate_sampled(&c499_surrogate(), 24, 64);
}
