//! Differential test layer: Difference Propagation vs brute-force truth.
//!
//! For c17, the full adder and c95, and for both fault models (checkpoint
//! stuck-at faults and AND/OR NFBFs), DP's exact `test_count` and
//! per-output observability sets must equal, fault by fault, a ground truth
//! computed by scalar exhaustive simulation of every input vector. The
//! scalar simulator shares no code with the engine's BDD path (and is
//! cross-checked here against the bit-parallel `exhaustive_detectability`),
//! so agreement pins the whole DP pipeline — good functions, Table-1
//! propagation, counting — to an independent oracle.

mod common;

use common::{
    assert_matches_golden, bridging_universe, current_golden_lines, stuck_at_universe, GOLDEN_PATH,
};
use diffprop::core::{analyze_universe, EngineConfig, Parallelism, SweepConfig};
use diffprop::faults::Fault;
use diffprop::netlist::generators::{c17, c95, full_adder};
use diffprop::netlist::Circuit;
use diffprop::sim::{exhaustive_detectability, faulty_outputs};

/// Per-fault brute-force truth: exact detecting-vector count and the set of
/// outputs where the fault is ever visible.
struct GroundTruth {
    count: u128,
    observable: Vec<bool>,
}

/// Good outputs for every input vector, indexed by the vector's bit pattern.
fn good_output_table(circuit: &Circuit) -> Vec<Vec<bool>> {
    let n = circuit.num_inputs();
    (0..1u64 << n)
        .map(|bits| circuit.eval(&to_vector(bits, n)))
        .collect()
}

fn to_vector(bits: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| bits >> i & 1 == 1).collect()
}

fn ground_truth(circuit: &Circuit, fault: &Fault, good: &[Vec<bool>]) -> GroundTruth {
    let n = circuit.num_inputs();
    let mut count = 0u128;
    let mut observable = vec![false; circuit.num_outputs()];
    for bits in 0..1u64 << n {
        let bad = faulty_outputs(circuit, fault, &to_vector(bits, n));
        let mut any = false;
        for (k, flag) in observable.iter_mut().enumerate() {
            if good[bits as usize][k] != bad[k] {
                *flag = true;
                any = true;
            }
        }
        if any {
            count += 1;
        }
    }
    GroundTruth { count, observable }
}

/// Runs the sweep and checks every fault against the oracle.
fn check_universe(circuit: &Circuit, faults: &[Fault]) {
    assert!(!faults.is_empty(), "empty universe on {}", circuit.name());
    let n = circuit.num_inputs();
    let total = 1u128 << n;
    let good = good_output_table(circuit);
    let sweep = analyze_universe(circuit, faults, EngineConfig::default(), Parallelism::Serial);
    for (fault, summary) in faults.iter().zip(&sweep.summaries) {
        let truth = ground_truth(circuit, fault, &good);
        assert_eq!(
            summary.test_count,
            Some(truth.count),
            "test_count for {fault} on {}",
            circuit.name()
        );
        assert_eq!(
            summary.observable_outputs, truth.observable,
            "observable outputs for {fault} on {}",
            circuit.name()
        );
        // count / 2^n is exact in f64 for these sizes, so demand bit equality.
        assert_eq!(
            summary.detectability.to_bits(),
            (truth.count as f64 / total as f64).to_bits(),
            "detectability for {fault} on {}",
            circuit.name()
        );
        // The two independent simulators must also agree with each other.
        let (det, tot) = exhaustive_detectability(circuit, fault);
        assert_eq!(det as u128, truth.count, "simulators disagree on {fault}");
        assert_eq!(tot as u128, total);
        if matches!(fault, Fault::StuckAt(_)) {
            assert!(summary.site_function_constant, "{fault} site not constant");
        }
    }
}

// ---------------------------------------------------------------------------
// Golden summaries: the engine's output pinned bit-for-bit across refactors.
//
// `tests/golden/universe_summaries.tsv` was captured from the serial sweep
// before the complement-edge BDD refactor. The serialisation and universe
// enumeration live in `tests/common/mod.rs` (shared with the telemetry
// invariance layer). Regenerate deliberately with
// `DP_UPDATE_GOLDEN=1 cargo test -q --test differential golden`.
// ---------------------------------------------------------------------------

fn sweep_config(parallelism: Parallelism) -> SweepConfig {
    SweepConfig {
        parallelism,
        ..Default::default()
    }
}

#[test]
fn golden_universe_summaries_are_bit_identical() {
    let lines = current_golden_lines(&sweep_config(Parallelism::Serial));
    if std::env::var_os("DP_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, lines.join("\n") + "\n").expect("write golden file");
        return;
    }
    assert_matches_golden(&lines);
}

/// The same golden file, reproduced by the work-stealing sweep at four
/// workers: scheduling (which worker claims which chunk, in what
/// interleaving) must leave every byte of the output unchanged.
#[test]
fn golden_universe_summaries_are_bit_identical_at_four_threads() {
    assert_matches_golden(&current_golden_lines(&sweep_config(Parallelism::Threads(4))));
}

#[test]
fn c17_stuck_at_matches_exhaustive() {
    let c = c17();
    check_universe(&c, &stuck_at_universe(&c));
}

#[test]
fn c17_bridging_matches_exhaustive() {
    let c = c17();
    check_universe(&c, &bridging_universe(&c, usize::MAX));
}

#[test]
fn full_adder_stuck_at_matches_exhaustive() {
    let c = full_adder();
    check_universe(&c, &stuck_at_universe(&c));
}

#[test]
fn full_adder_bridging_matches_exhaustive() {
    let c = full_adder();
    check_universe(&c, &bridging_universe(&c, usize::MAX));
}

#[test]
fn c95_stuck_at_matches_exhaustive() {
    let c = c95();
    check_universe(&c, &stuck_at_universe(&c));
}

#[test]
fn c95_bridging_matches_exhaustive() {
    let c = c95();
    // c95's NFBF sets are large; a deterministic 120-per-kind slice keeps
    // the oracle (512 vectors x scalar resimulation per fault) affordable.
    check_universe(&c, &bridging_universe(&c, 120));
}
