//! Shared-manager snapshot layer: scheduling and manager-mode invariance.
//!
//! PR7's shared-manager parallelism must be a pure execution-strategy
//! change: the golden TSV (`tests/golden/universe_summaries.tsv`, f64s as
//! bit patterns) has to come out byte-identical whether workers get private
//! managers or delta managers over one frozen snapshot, at any thread
//! count, under any variable-order strategy. A white-box layer then pins
//! the freeze contract itself: the frozen base is immutable — its node
//! count and table digest are unchanged after engines have analysed whole
//! universes on top of it.

mod common;

use common::{assert_matches_golden, current_golden_lines, stuck_at_universe};
use diffprop::core::{
    DiffProp, EngineConfig, ManagerMode, OrderStrategy, Parallelism, SweepConfig,
};
use diffprop::netlist::generators::c95;

fn config(parallelism: Parallelism, manager: ManagerMode, order: OrderStrategy) -> SweepConfig {
    SweepConfig {
        engine: EngineConfig {
            order,
            ..Default::default()
        },
        parallelism,
        manager,
        ..Default::default()
    }
}

/// The full cross product the issue pins: {serial, 2T, 4T} ×
/// {private-manager, shared-snapshot} × {identity, fanin-dfs, auto} all
/// reproduce the committed golden file byte for byte.
#[test]
fn golden_summaries_are_invariant_under_manager_mode_threads_and_order() {
    for order in [
        OrderStrategy::Identity,
        OrderStrategy::FaninDfs,
        OrderStrategy::Auto,
    ] {
        for manager in [ManagerMode::Private, ManagerMode::SharedSnapshot] {
            for parallelism in [
                Parallelism::Serial,
                Parallelism::Threads(2),
                Parallelism::Threads(4),
            ] {
                let lines = current_golden_lines(&config(parallelism, manager, order));
                assert_matches_golden(&lines);
            }
        }
    }
}

/// White-box freeze contract: workers hammering delta managers on top of
/// one snapshot never change the frozen base — same node count, same
/// FNV digest over the node array, before and after.
#[test]
fn frozen_base_is_immutable_while_workers_analyze() {
    let circuit = c95();
    let snapshot = DiffProp::build_snapshot(&circuit, EngineConfig::default()).unwrap();
    let nodes_before = snapshot.num_nodes();
    let digest_before = snapshot.table_digest();
    let faults = stuck_at_universe(&circuit);

    std::thread::scope(|scope| {
        for w in 0..4 {
            let snapshot = &snapshot;
            let faults = &faults;
            let circuit = &circuit;
            scope.spawn(move || {
                let mut dp = DiffProp::from_snapshot(circuit, snapshot, EngineConfig::default());
                // Interleaved shares so every worker allocates delta nodes
                // and garbage-collects over the same base concurrently.
                for fault in faults.iter().skip(w).step_by(2) {
                    let analysis = dp.analyze(fault);
                    assert!(analysis.test_count.is_some(), "exact analysis expected");
                }
                let stats = dp.good().manager().stats();
                assert!(stats.base_hits > 0, "worker never resolved from the base");
                assert_eq!(stats.unique.lookups, stats.base_hits + stats.delta_lookups);
            });
        }
    });

    assert_eq!(snapshot.num_nodes(), nodes_before, "frozen base grew");
    assert_eq!(
        snapshot.table_digest(),
        digest_before,
        "frozen base nodes were rewritten"
    );
}
