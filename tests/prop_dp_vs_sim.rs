//! Cross-crate property tests: on random circuits, Difference Propagation's
//! exact counts must equal brute-force exhaustive fault simulation for every
//! fault model — the central correctness claim of the reproduction.

use diffprop::core::{DiffProp, EngineConfig};
use diffprop::faults::{
    checkpoint_faults, enumerate_nfbfs, BridgeKind, Fault,
};
use diffprop::netlist::generators::{random_circuit, RandomCircuitConfig};
use diffprop::sim::exhaustive_detectability;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = (u64, RandomCircuitConfig)> {
    (
        any::<u64>(),
        (2usize..=6, 4usize..=25, 2usize..=4),
    )
        .prop_map(|(seed, (inputs, gates, max_fanin))| {
            (
                seed,
                RandomCircuitConfig {
                    inputs,
                    gates,
                    max_fanin,
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stuck_at_counts_match_simulation((seed, cfg) in config_strategy()) {
        let circuit = random_circuit(seed, cfg);
        let mut dp = DiffProp::new(&circuit);
        for f in checkpoint_faults(&circuit) {
            let fault = Fault::from(f);
            let analysis = dp.analyze(&fault);
            let (det, total) = exhaustive_detectability(&circuit, &fault);
            prop_assert_eq!(analysis.test_count, Some(det as u128), "{} on {}", fault, circuit.name());
            prop_assert!((analysis.detectability - det as f64 / total as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn bridging_counts_match_simulation((seed, cfg) in config_strategy()) {
        let circuit = random_circuit(seed, cfg);
        let mut dp = DiffProp::new(&circuit);
        for kind in [BridgeKind::And, BridgeKind::Or] {
            // Cap per circuit to keep runtime bounded; determinism of the
            // enumeration makes the slice stable.
            for f in enumerate_nfbfs(&circuit, kind).into_iter().take(40) {
                let fault = Fault::from(f);
                let analysis = dp.analyze(&fault);
                let (det, _) = exhaustive_detectability(&circuit, &fault);
                prop_assert_eq!(analysis.test_count, Some(det as u128), "{} on {}", fault, circuit.name());
            }
        }
    }

    #[test]
    fn picked_tests_detect_and_non_tests_do_not((seed, cfg) in config_strategy()) {
        let circuit = random_circuit(seed, cfg);
        let mut dp = DiffProp::new(&circuit);
        let n = circuit.num_inputs();
        for f in checkpoint_faults(&circuit).into_iter().take(6) {
            let fault = Fault::from(f);
            let analysis = dp.analyze(&fault);
            // The test-set BDD must classify every input vector exactly as
            // the simulator does.
            for bits in 0u32..(1u32 << n) {
                let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                let dp_says = dp.good().manager().eval(analysis.test_set, &v);
                let sim_says = diffprop::sim::detects(&circuit, &fault, &v);
                prop_assert_eq!(dp_says, sim_says, "{} at {:?}", fault, v);
            }
        }
    }

    #[test]
    fn engine_modes_agree((seed, cfg) in config_strategy()) {
        let circuit = random_circuit(seed, cfg);
        let mut default_dp = DiffProp::new(&circuit);
        let mut naive_dp = DiffProp::with_config(
            &circuit,
            EngineConfig { table1: false, selective_trace: false, ..Default::default() },
        );
        for f in checkpoint_faults(&circuit).into_iter().take(8) {
            let fault = Fault::from(f);
            let a = default_dp.analyze(&fault);
            let b = naive_dp.analyze(&fault);
            prop_assert_eq!(a.test_count, b.test_count, "{}", fault);
            prop_assert_eq!(a.observable_outputs, b.observable_outputs);
        }
    }

    #[test]
    fn adherence_and_syndrome_bounds_hold((seed, cfg) in config_strategy()) {
        let circuit = random_circuit(seed, cfg);
        let mut dp = DiffProp::new(&circuit);
        for f in checkpoint_faults(&circuit) {
            let fault = Fault::from(f);
            let analysis = dp.analyze(&fault);
            let bound = dp.detectability_bound(&fault).expect("stuck-at");
            prop_assert!(
                analysis.detectability <= bound + 1e-12,
                "{}: detectability {} exceeds syndrome bound {}",
                fault, analysis.detectability, bound
            );
            if let Some(a) = dp.adherence(&analysis) {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
            }
        }
    }
}
