//! Qualitative reproduction of the paper's §4 findings, asserted as tests.
//!
//! These are shape claims, not absolute numbers: the large ISCAS circuits
//! are surrogates (DESIGN.md §4), so what must hold is *who wins and in
//! which direction*, which is what the paper's figures argue.

use diffprop::analysis::figures::{
    fig2_sa_trend, fig4_adherence_histogram, fig5_stuck_behaviour, ExperimentConfig,
};
use diffprop::analysis::topology::{detectability_vs_po_distance, pos_fed_vs_observed};
use diffprop::analysis::{analyze_faults, bridging_universe, stuck_at_universe};
use diffprop::faults::BridgeKind;
use diffprop::netlist::generators::{alu74181, c17, c95, full_adder};

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        bins: 20,
        bf_sample: 150,
        sa_cap: usize::MAX,
        seed: 1990,
        parallelism: diffprop::core::Parallelism::Serial,
        ..Default::default()
    }
}

/// Figure 2's direction: PO-normalised mean detectability decreases from the
/// small circuits to the larger ones.
#[test]
fn normalized_detectability_decreases_with_size() {
    let suite = vec![c17(), c95(), alu74181()];
    let points = fig2_sa_trend(&suite, &cfg());
    let c17_norm = points[0].normalized_detectability;
    let alu_norm = points[2].normalized_detectability;
    assert!(
        alu_norm < c17_norm,
        "expected decreasing: c17 {c17_norm} vs alu {alu_norm}"
    );
}

/// Figure 4's shape: adherence histograms have a sharp rise at 1.0 — "an
/// unexpectedly large proportion" of faults use every excitation minterm.
#[test]
fn adherence_spikes_at_one() {
    let h = fig4_adherence_histogram(&alu74181(), &cfg());
    let props = h.proportions();
    let last = props[props.len() - 1];
    // "Sharp rise at one": the 1.0 bin towers over the bins just below it.
    let shoulder: f64 = props[props.len() - 5..props.len() - 1]
        .iter()
        .sum::<f64>()
        / 4.0;
    assert!(last > 0.0, "no mass at adherence 1.0");
    assert!(
        last > 4.0 * shoulder,
        "no sharp rise at 1.0: last bin {last}, shoulder mean {shoulder}"
    );
}

/// Figure 5's direction: the proportion of NFBFs with stuck-at behaviour is
/// generally low (the paper's agreement with Inductive Fault Analysis).
#[test]
fn stuck_at_equivalent_bridges_are_a_minority() {
    let rows = fig5_stuck_behaviour(&[c95(), alu74181()], &cfg());
    for row in rows {
        assert!(
            row.and_proportion < 0.5,
            "{}: AND proportion {} not a minority",
            row.name,
            row.and_proportion
        );
        assert!(row.or_proportion < 0.5);
    }
}

/// Figures 6/7's observation: AND and OR NFBF detectability distributions
/// are close — "the logic dominance value ... is of little consequence".
#[test]
fn and_or_bridges_have_similar_means() {
    let c = c95();
    let config = cfg();
    let mean = |kind| {
        let records = analyze_faults(&c, &bridging_universe(&c, kind, Some(config.bf_sample), config.seed));
        let detectable: Vec<f64> = records
            .iter()
            .filter(|r| r.is_detectable())
            .map(|r| r.detectability)
            .collect();
        detectable.iter().sum::<f64>() / detectable.len() as f64
    };
    let and_mean = mean(BridgeKind::And);
    let or_mean = mean(BridgeKind::Or);
    assert!(
        (and_mean - or_mean).abs() < 0.15,
        "AND {and_mean} vs OR {or_mean} diverge"
    );
}

/// §4.1's observation: fed POs and observable POs almost always coincide.
#[test]
fn pos_fed_equals_pos_observed_almost_always() {
    for c in [c17(), full_adder(), c95(), alu74181()] {
        let records = analyze_faults(&c, &stuck_at_universe(&c, true));
        let (equal, total) = pos_fed_vs_observed(&records);
        assert!(
            equal as f64 >= 0.9 * total as f64,
            "{}: only {equal}/{total}",
            c.name()
        );
    }
}

/// Figure 3's bathtub: faults adjacent to the POs are easier to detect than
/// the mid-circuit faults.
#[test]
fn po_adjacent_faults_are_easier_than_mid_circuit() {
    let c = alu74181();
    let records = analyze_faults(&c, &stuck_at_universe(&c, true));
    let curve = detectability_vs_po_distance(&records);
    assert!(curve.len() >= 3, "need depth for a bathtub");
    let nearest = curve.first().unwrap().mean_detectability;
    let middle = curve[curve.len() / 2].mean_detectability;
    assert!(
        nearest > middle,
        "no PO-side bathtub wall: near {nearest} vs middle {middle}"
    );
}

/// Bridging faults' mean detectability is slightly higher than stuck-at
/// means (paper §4.2, Figure 7 vs Figure 2).
#[test]
fn bridging_means_exceed_stuck_at_means() {
    let c = c95();
    let config = cfg();
    let sa = analyze_faults(&c, &stuck_at_universe(&c, true));
    let sa_mean: f64 = sa.iter().map(|r| r.detectability).sum::<f64>() / sa.len() as f64;
    let mut bf = analyze_faults(&c, &bridging_universe(&c, BridgeKind::And, Some(config.bf_sample), config.seed));
    bf.extend(analyze_faults(&c, &bridging_universe(&c, BridgeKind::Or, Some(config.bf_sample), config.seed)));
    let bf_mean: f64 = bf.iter().map(|r| r.detectability).sum::<f64>() / bf.len() as f64;
    assert!(
        bf_mean > sa_mean * 0.9,
        "bridging mean {bf_mean} unexpectedly far below stuck-at mean {sa_mean}"
    );
}
