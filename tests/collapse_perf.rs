//! The perf contract of structural fault collapsing, measured on the paper's
//! two benchmark circuits (c95 and the 74181 ALU) over the full pin-level
//! stuck-at universe: both polarities on every net and on every fanout
//! branch — every gate input pin and gate output is a distinct site, exactly
//! the universe the classic collapsing literature quotes its ratios for.
//!
//! The headline assertion is the acceptance bar of the cone-aware-sweeps
//! work: collapsing cuts the number of BDD propagation passes (one per
//! equivalence class instead of one per fault, counted by the sweep's
//! per-shard `classes_done` telemetry) by at least 30% across the c95/74181
//! stuck-at universe, with bit-identical summaries. Per circuit the ratio
//! is topology-dependent — the gate-rich 74181 clears 30% on its own, while
//! c95's XOR-heavy, reconvergent carry-lookahead tree tops out just above
//! 29% (XOR pins never collapse and high-fanout stems block net
//! forwarding), so c95 carries a 25% floor and the 30% bar is asserted on
//! the two-circuit suite.
//!
//! The saved passes must also show up as saved *work* in the managers' own
//! [`ManagerStats`] counters, read through the cumulative views
//! (`unique.lookups` and `op_cumulative_total()`), which survive every gc:
//! the per-generation op counters still reset when a collection clears the
//! cache, but the cumulative ones keep counting, so a sweep-end reading
//! covers the whole run no matter how often the adaptive gc fired. Under
//! the default engine config the uncollapsed 74181 sweep re-derives every
//! duplicate fault's deltas; collapsing removes that recomputation and both
//! the cumulative unique-table and op-cache traffic drop by over 20% (c95
//! is small enough that one warm cache absorbs its whole universe, so only
//! a strict decrease is asserted there).

use diffprop::core::{sweep_universe, SweepConfig, SweepResult};
use diffprop::faults::{all_stuck_faults, Fault, FaultSite, StuckAtFault};
use diffprop::netlist::generators::{alu74181, c95};
use diffprop::netlist::Circuit;

/// Both polarities on every net plus both polarities on every fanout branch.
fn pin_universe(circuit: &Circuit) -> Vec<Fault> {
    let mut faults = all_stuck_faults(circuit);
    for branch in circuit.fanout_branches() {
        for value in [false, true] {
            faults.push(StuckAtFault {
                site: FaultSite::Branch(branch),
                value,
            });
        }
    }
    faults.into_iter().map(Fault::from).collect()
}

/// One serial sweep over the (uncollapsed) pin-level stuck-at universe
/// under the default engine config.
fn sweep(circuit: &Circuit, collapse: bool) -> SweepResult {
    let faults = pin_universe(circuit);
    let result = sweep_universe(
        circuit,
        &faults,
        &SweepConfig {
            collapse,
            ..Default::default()
        },
    );
    assert!(result.is_complete());
    assert_eq!(result.summaries.len(), faults.len());
    result
}

/// BDD propagation passes the sweep actually ran, from the per-shard
/// telemetry (cross-checked against the partition's class count).
fn propagations(sweep: &SweepResult) -> usize {
    let done: usize = sweep.shards.iter().map(|s| s.classes_done).sum();
    assert_eq!(done, sweep.classes, "one pass per equivalence class");
    done
}

fn fraction_cut(off: u64, on: u64) -> f64 {
    1.0 - on as f64 / off as f64
}

/// Off/on work counters for one circuit, all cumulative across gc.
struct Measurement {
    passes_off: usize,
    passes_on: usize,
    unique_off: u64,
    unique_on: u64,
    ops_off: u64,
    ops_on: u64,
}

/// Off/on measurement for one circuit with the bit-identity cross-check.
fn measure(circuit: &Circuit) -> Measurement {
    let off = sweep(circuit, false);
    let on = sweep(circuit, true);
    // Identical scalars first — a fast cross-check of the bit-identity
    // contract before we talk about speed.
    assert_eq!(off.summaries, on.summaries);
    let m = Measurement {
        passes_off: propagations(&off),
        passes_on: propagations(&on),
        unique_off: off.merged_stats().unique.lookups,
        unique_on: on.merged_stats().unique.lookups,
        ops_off: off.merged_stats().op_cumulative_total().lookups,
        ops_on: on.merged_stats().op_cumulative_total().lookups,
    };
    eprintln!(
        "{}: {} -> {} propagations ({:.1}% cut), {} -> {} unique-table lookups ({:.1}% cut), \
         {} -> {} op-cache lookups ({:.1}% cut)",
        circuit.name(),
        m.passes_off,
        m.passes_on,
        100.0 * fraction_cut(m.passes_off as u64, m.passes_on as u64),
        m.unique_off,
        m.unique_on,
        100.0 * fraction_cut(m.unique_off, m.unique_on),
        m.ops_off,
        m.ops_on,
        100.0 * fraction_cut(m.ops_off, m.ops_on)
    );
    m
}

#[test]
fn collapsing_cuts_propagations_by_30_percent_on_the_paper_suite() {
    let c95_m = measure(&c95());
    let alu_m = measure(&alu74181());

    // The 74181 clears the bar on its own; c95's XOR-heavy lookahead tree
    // is the structural worst case and still must cut by a quarter.
    assert!(
        fraction_cut(alu_m.passes_off as u64, alu_m.passes_on as u64) >= 0.30,
        "74181: expected >= 30% fewer propagations, got {} -> {}",
        alu_m.passes_off,
        alu_m.passes_on
    );
    assert!(
        fraction_cut(c95_m.passes_off as u64, c95_m.passes_on as u64) >= 0.25,
        "c95: expected >= 25% fewer propagations, got {} -> {}",
        c95_m.passes_off,
        c95_m.passes_on
    );

    // The acceptance bar: >= 30% fewer BDD propagations across the
    // c95/74181 stuck-at universe.
    let cut = fraction_cut(
        (c95_m.passes_off + alu_m.passes_off) as u64,
        (c95_m.passes_on + alu_m.passes_on) as u64,
    );
    assert!(
        cut >= 0.30,
        "suite: expected >= 30% fewer propagations, got {:.1}%",
        100.0 * cut
    );

    // The managers must witness real saved work, not just bookkeeping:
    // strictly fewer unique-table and op-cache probes on both circuits
    // (cumulative across gc), and >= 20% cuts on the 74181 where duplicate
    // re-derivation dominates.
    assert!(
        c95_m.unique_on < c95_m.unique_off,
        "c95: collapsing must reduce unique-table work"
    );
    assert!(
        c95_m.ops_on < c95_m.ops_off,
        "c95: collapsing must reduce op-cache work"
    );
    assert!(
        alu_m.unique_on < alu_m.unique_off,
        "74181: collapsing must reduce unique-table work"
    );
    let alu_unique_cut = fraction_cut(alu_m.unique_off, alu_m.unique_on);
    assert!(
        alu_unique_cut >= 0.20,
        "74181: expected >= 20% fewer unique-table lookups, got {:.1}%",
        100.0 * alu_unique_cut
    );
    let alu_op_cut = fraction_cut(alu_m.ops_off, alu_m.ops_on);
    assert!(
        alu_op_cut >= 0.20,
        "74181: expected >= 20% fewer op-cache lookups, got {:.1}%",
        100.0 * alu_op_cut
    );
}
