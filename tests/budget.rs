//! Cross-crate budget tests: a work-budgeted engine must be *fail-safe* —
//! every `try_analyze` call either returns exactly what the unbudgeted
//! engine returns, or reports `BudgetExceeded`. It must never return a
//! plausible-but-wrong answer, and a budget-capped sweep must degrade to
//! sampled estimates instead of panicking or aborting.

use diffprop::analysis::stuck_at_universe;
use diffprop::core::{
    analyze_universe_with, AnalysisError, BudgetConfig, DiffProp, EngineConfig,
    FallbackConfig, Parallelism,
};
use diffprop::faults::{checkpoint_faults, Fault};
use diffprop::netlist::generators::{
    alu74181, c95, random_circuit, RandomCircuitConfig,
};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = (u64, RandomCircuitConfig)> {
    (any::<u64>(), (2usize..=5, 4usize..=18, 2usize..=4)).prop_map(
        |(seed, (inputs, gates, max_fanin))| {
            (
                seed,
                RandomCircuitConfig {
                    inputs,
                    gates,
                    max_fanin,
                },
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On random circuits under random tiny budgets, `try_analyze` is
    /// all-or-nothing: `Ok` results are bit-identical to the unbudgeted
    /// engine's, and the only failure mode is `Err(BudgetExceeded)`.
    #[test]
    fn budgeted_analysis_is_exact_or_err(
        (seed, cfg) in config_strategy(),
        max_nodes in 1usize..160,
        max_op_steps in 1u64..2000,
    ) {
        let circuit = random_circuit(seed, cfg);
        let mut reference = DiffProp::new(&circuit);
        let budget = BudgetConfig {
            max_nodes: Some(max_nodes),
            max_op_steps: Some(max_op_steps),
        };
        let config = EngineConfig { budget, ..Default::default() };
        // The build itself may blow the budget; that is a legal outcome,
        // not a test failure.
        if let Ok(mut budgeted) = DiffProp::try_with_config(&circuit, config) {
            for f in checkpoint_faults(&circuit).into_iter().take(12) {
                let fault = Fault::from(f);
                let exact = reference.analyze(&fault);
                match budgeted.try_analyze(&fault) {
                    Ok(got) => {
                        prop_assert_eq!(
                            got.detectability.to_bits(),
                            exact.detectability.to_bits(),
                            "{} on {}", fault, circuit.name()
                        );
                        prop_assert_eq!(got.test_count, exact.test_count);
                        prop_assert_eq!(&got.observable_outputs, &exact.observable_outputs);
                        prop_assert_eq!(got.site_function_constant, exact.site_function_constant);
                    }
                    // Stuck-at faults never take the fixpoint path.
                    Err(AnalysisError::FixpointDiverged { .. }) => {
                        prop_assert!(false, "stuck-at fault reported a fixpoint divergence");
                    }
                    Err(AnalysisError::BudgetExceeded(_)) => {
                        // Legal degradation — and it must not poison later
                        // calls: the infallible path stays exact afterwards.
                        let recovered = budgeted.analyze(&fault);
                        prop_assert_eq!(
                            recovered.detectability.to_bits(),
                            exact.detectability.to_bits()
                        );
                    }
                }
            }
        }
    }
}

/// A sweep over real benchmark circuits with an adversarially tiny node
/// budget completes without panicking, covers every fault, degrades a
/// non-zero number of them to sampled estimates, and keeps every
/// detectability in range.
#[test]
fn tiny_budget_sweep_degrades_instead_of_aborting() {
    for circuit in [c95(), alu74181()] {
        let faults = stuck_at_universe(&circuit, true);
        let config = EngineConfig {
            budget: BudgetConfig::with_max_nodes(16),
            ..Default::default()
        };
        let fallback = FallbackConfig {
            samples: 256,
            ..Default::default()
        };
        let sweep = analyze_universe_with(
            &circuit,
            &faults,
            config,
            Parallelism::Threads(3),
            fallback,
        );
        assert!(sweep.is_complete(), "no shard may fail on {}", circuit.name());
        assert_eq!(sweep.summaries.len(), faults.len());
        assert!(
            sweep.num_bounded() > 0,
            "a 16-node budget must trip on {}",
            circuit.name()
        );
        for s in &sweep.summaries {
            assert!(
                (0.0..=1.0).contains(&s.detectability),
                "{} out of range on {}",
                s.fault,
                circuit.name()
            );
        }
    }
}

/// Without a configured budget the fallible sweep is the exact sweep: same
/// scalars, every outcome `Exact`.
#[test]
fn unlimited_budget_sweep_matches_the_default_path() {
    let circuit = c95();
    let faults = stuck_at_universe(&circuit, true);
    let exact = diffprop::core::analyze_universe(
        &circuit,
        &faults,
        EngineConfig::default(),
        Parallelism::Serial,
    );
    let fallible = analyze_universe_with(
        &circuit,
        &faults,
        EngineConfig::default(),
        Parallelism::Serial,
        FallbackConfig::default(),
    );
    assert_eq!(exact.summaries.len(), fallible.summaries.len());
    for (a, b) in exact.summaries.iter().zip(&fallible.summaries) {
        assert_eq!(a.fault, b.fault);
        assert_eq!(a.detectability.to_bits(), b.detectability.to_bits());
        assert_eq!(a.test_count, b.test_count);
        assert!(b.outcome.is_exact());
    }
}
