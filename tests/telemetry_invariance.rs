//! Telemetry is observation-only: attaching a collector to a sweep must not
//! change a single output bit.
//!
//! Strategy: replay the golden universes (`tests/golden/universe_summaries.tsv`,
//! owned by `tests/differential.rs`) at every [`TelemetryLevel`] — including
//! `Detailed`, which reads the clock around every gate propagation — and at
//! both serial and four-thread execution. Every run must reproduce the
//! committed golden TSV byte for byte. A companion check confirms the
//! collectors really were live (non-zero spans and counters), so a silently
//! disabled collector can't fake the invariance.

mod common;

use common::{assert_matches_golden, current_golden_lines, stuck_at_universe};
use diffprop::core::{sweep_universe, Parallelism, SweepConfig, TelemetryLevel};
use diffprop::netlist::generators::c95;
use diffprop::telemetry::{CounterKind, SpanKind};

fn config(parallelism: Parallelism, telemetry: TelemetryLevel) -> SweepConfig {
    SweepConfig {
        parallelism,
        telemetry,
        ..Default::default()
    }
}

#[test]
fn serial_sweep_is_byte_identical_at_every_telemetry_level() {
    for level in [
        TelemetryLevel::Off,
        TelemetryLevel::Aggregate,
        TelemetryLevel::Detailed,
    ] {
        assert_matches_golden(&current_golden_lines(&config(Parallelism::Serial, level)));
    }
}

#[test]
fn four_thread_sweep_is_byte_identical_at_every_telemetry_level() {
    for level in [
        TelemetryLevel::Off,
        TelemetryLevel::Aggregate,
        TelemetryLevel::Detailed,
    ] {
        assert_matches_golden(&current_golden_lines(&config(
            Parallelism::Threads(4),
            level,
        )));
    }
}

/// Guards the guard: the invariance tests above are only meaningful if the
/// collectors actually observe the sweep. An `Off` sweep must record
/// nothing; an observing sweep must have seen every span kind and the
/// manager counters.
#[test]
fn collectors_really_observe_the_sweep() {
    let circuit = c95();
    let faults = stuck_at_universe(&circuit);

    let off = sweep_universe(&circuit, &faults, &config(Parallelism::Serial, TelemetryLevel::Off));
    assert_eq!(off.totals.span(SpanKind::Sweep).count, 0);
    assert_eq!(off.totals.counter(CounterKind::UniqueLookups), 0);

    for level in [TelemetryLevel::Aggregate, TelemetryLevel::Detailed] {
        let on = sweep_universe(&circuit, &faults, &config(Parallelism::Serial, level));
        let t = &on.totals;
        for kind in [
            SpanKind::Sweep,
            SpanKind::Chunk,
            SpanKind::Class,
            SpanKind::Fault,
            SpanKind::GateProp,
        ] {
            assert!(t.span(kind).count > 0, "{level:?}: no {kind:?} spans");
        }
        assert_eq!(t.span(SpanKind::Class).count as usize, on.classes);
        assert_eq!(
            t.counter(CounterKind::FaultsSummarized) as usize,
            faults.len()
        );
        assert!(t.counter(CounterKind::UniqueLookups) > 0);
        assert!(t.counter(CounterKind::OpCacheLookups) > 0);
        assert!(t.counter(CounterKind::GatesPropagated) > 0);
        assert!(t.counter(CounterKind::PeakNodes) > 0);
        // Only `Detailed` times individual gate propagations.
        let timed = t.span(SpanKind::GateProp).total_nanos > 0;
        assert_eq!(timed, level == TelemetryLevel::Detailed);
    }
}
