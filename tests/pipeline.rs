//! End-to-end pipeline tests: format round-trips, transforms, and analysis
//! interplay across all crates.

use diffprop::core::{generate_tests, DiffProp};
use diffprop::faults::{checkpoint_faults, Fault};
use diffprop::netlist::{
    decompose_two_input, expand_xor_to_nand, generators, parse_bench, write_bench,
};
use diffprop::sim::{detects, exhaustive_detectability};

/// `.bench` round-trips preserve fault analysis results bit-for-bit.
#[test]
fn bench_roundtrip_preserves_fault_analysis() {
    let original = generators::c95();
    let text = write_bench(&original);
    let reparsed = parse_bench(&text, "c95").expect("own output parses");

    let mut dp1 = DiffProp::new(&original);
    let mut dp2 = DiffProp::new(&reparsed);
    for (f1, f2) in checkpoint_faults(&original)
        .into_iter()
        .zip(checkpoint_faults(&reparsed))
    {
        let a1 = dp1.analyze(&Fault::from(f1));
        let a2 = dp2.analyze(&Fault::from(f2));
        assert_eq!(a1.test_count, a2.test_count);
    }
}

/// Netlist transforms keep primary-input faults' detectability intact:
/// a PI stuck-at sees the same function before and after restructuring.
#[test]
fn transforms_preserve_pi_fault_detectability() {
    let original = generators::alu74181();
    let narrowed = decompose_two_input(&original).expect("decompose");
    let nanded = expand_xor_to_nand(&original).expect("expand");
    let mut dp_o = DiffProp::new(&original);
    let mut dp_n = DiffProp::new(&narrowed);
    let mut dp_x = DiffProp::new(&nanded);
    for (i, &pi) in original.inputs().iter().enumerate() {
        for value in [false, true] {
            let mk = |c: &diffprop::netlist::Circuit| {
                Fault::from(diffprop::faults::StuckAtFault {
                    site: diffprop::faults::FaultSite::Net(c.inputs()[i]),
                    value,
                })
            };
            let a = dp_o.analyze(&mk(&original));
            let b = dp_n.analyze(&mk(&narrowed));
            let c = dp_x.analyze(&mk(&nanded));
            assert_eq!(a.test_count, b.test_count, "PI {pi} decompose");
            assert_eq!(a.test_count, c.test_count, "PI {pi} xor-expand");
        }
    }
}

/// The 74181's full checkpoint set: DP equals exhaustive simulation on a
/// real mid-size circuit (14 inputs, 16384 vectors per fault).
#[test]
fn alu74181_stuck_at_cross_validation() {
    let circuit = generators::alu74181();
    let mut dp = DiffProp::new(&circuit);
    for f in checkpoint_faults(&circuit) {
        let fault = Fault::from(f);
        let analysis = dp.analyze(&fault);
        let (det, _) = exhaustive_detectability(&circuit, &fault);
        assert_eq!(analysis.test_count, Some(det as u128), "{fault}");
    }
}

/// ATPG on the C432 surrogate: full stuck-at coverage with a compact set,
/// verified by simulation (spot-checked; the full verify lives in the
/// example binary).
#[test]
fn atpg_covers_c432_surrogate() {
    let circuit = generators::c432_surrogate();
    let faults: Vec<Fault> = checkpoint_faults(&circuit)
        .into_iter()
        .map(Fault::from)
        .collect();
    let tests = generate_tests(&circuit, &faults);
    assert_eq!(tests.covered + tests.undetectable.len(), faults.len());
    assert!(tests.vectors.len() < faults.len() / 2, "compaction too weak");
    for f in faults.iter().step_by(7) {
        if tests.undetectable.contains(f) {
            continue;
        }
        assert!(tests.vectors.iter().any(|v| detects(&circuit, f, v)), "{f}");
    }
}

/// The C1355 surrogate relationship: functionally identical to C499's, so
/// PI faults have identical complete test sets while the netlist is much
/// larger — the exact setup behind the paper's Figure 2 comparison.
#[test]
fn c499_c1355_share_pi_fault_test_sets() {
    let c499 = generators::c499_surrogate();
    let c1355 = generators::c1355_surrogate();
    assert!(c1355.num_gates() > 2 * c499.num_gates());
    let mut dp_a = DiffProp::new(&c499);
    let mut dp_b = DiffProp::new(&c1355);
    for i in [0usize, 7, 33, 40] {
        for value in [false, true] {
            let fa = Fault::from(diffprop::faults::StuckAtFault {
                site: diffprop::faults::FaultSite::Net(c499.inputs()[i]),
                value,
            });
            let fb = Fault::from(diffprop::faults::StuckAtFault {
                site: diffprop::faults::FaultSite::Net(c1355.inputs()[i]),
                value,
            });
            let a = dp_a.analyze(&fa);
            let b = dp_b.analyze(&fb);
            assert_eq!(a.test_count, b.test_count, "PI {i} s-a-{value}");
        }
    }
}

/// Loading a transformed netlist from `.bench` text and analysing it gives
/// the same results as analysing the in-memory transform.
#[test]
fn serialized_transform_pipeline() {
    let base = generators::full_adder();
    let expanded = expand_xor_to_nand(&base).expect("expand");
    let text = write_bench(&expanded);
    let loaded = parse_bench(&text, "fa_nand").expect("parses");
    let mut dp1 = DiffProp::new(&expanded);
    let mut dp2 = DiffProp::new(&loaded);
    for (f1, f2) in checkpoint_faults(&expanded)
        .into_iter()
        .zip(checkpoint_faults(&loaded))
    {
        let a1 = dp1.analyze(&Fault::from(f1));
        let a2 = dp2.analyze(&Fault::from(f2));
        assert_eq!(a1.test_count, a2.test_count);
    }
}
