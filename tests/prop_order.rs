//! Order-invariance property layer: summaries depend on the *function*,
//! never on the variable order.
//!
//! Every scalar a sweep emits (detectability, exact counts, observability
//! flags, adherence, site constancy) is derived from sat counts and
//! densities of canonical OBDDs, so re-running the golden universes under
//! any valid variable order — the structural heuristics, `auto` with its
//! dynamic sifting, or an arbitrary random permutation — must reproduce the
//! committed golden TSV byte for byte, serial and sharded alike. The golden
//! file itself was captured under the identity order, which makes it the
//! cross-order baseline for free.

mod common;

use common::{assert_matches_golden, current_golden_lines};
use diffprop::core::{EngineConfig, OrderStrategy, Parallelism, SweepConfig};
use proptest::prelude::*;

fn lines_with(order: OrderStrategy, parallelism: Parallelism) -> Vec<String> {
    current_golden_lines(&SweepConfig {
        engine: EngineConfig {
            order,
            ..Default::default()
        },
        parallelism,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random valid permutation orders (seeded Fisher–Yates inside the
    /// engine) on c17 / full_adder / c95: byte-identical golden lines from
    /// the serial sweep.
    #[test]
    fn random_orders_reproduce_golden_lines_serially(seed in any::<u64>()) {
        assert_matches_golden(&lines_with(
            OrderStrategy::Random(seed),
            Parallelism::Serial,
        ));
    }

    /// The same random orders under the work-stealing sweep at four
    /// workers: scheduling × ordering must still change nothing.
    #[test]
    fn random_orders_reproduce_golden_lines_at_four_threads(seed in any::<u64>()) {
        assert_matches_golden(&lines_with(
            OrderStrategy::Random(seed),
            Parallelism::Threads(4),
        ));
    }
}

#[test]
fn structural_orders_reproduce_golden_lines() {
    for order in [
        OrderStrategy::FaninDfs,
        OrderStrategy::Interleave,
        OrderStrategy::Auto,
    ] {
        assert_matches_golden(&lines_with(order, Parallelism::Serial));
        assert_matches_golden(&lines_with(order, Parallelism::Threads(4)));
    }
}
