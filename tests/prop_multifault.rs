//! Property layer for the extended fault models.
//!
//! Three families of invariants pin the new machinery to the old:
//!
//! * **Degeneracy** — a multiplicity-1 multiple stuck-at fault *is* the
//!   single stuck-at fault: every scalar the engine reports must be
//!   bit-identical between the two encodings, for every checkpoint fault.
//! * **Fixpoint conservatism** — running a *non-feedback* bridge through
//!   the feedback fixpoint must reproduce the one-pass NFBF analysis
//!   exactly (the loop converges in two sweeps to the same canonical
//!   OBDDs), with a zero oscillation residual.
//! * **Schedule invariance** — feedback-bridge and multi-fault sweeps are
//!   bit-identical across thread counts, manager modes, and batch sizes;
//!   the new models inherit the determinism contract of the sweep layer.

mod common;

use common::{feedback_universe, multi_universe, summary_line};
use diffprop::core::{
    sweep_universe, DiffProp, ManagerMode, Parallelism, SweepConfig,
};
use diffprop::faults::{
    checkpoint_faults, enumerate_nfbfs, BridgeKind, Fault, MultiStuckAt,
};
use diffprop::netlist::generators::{c17, c95};

/// Every checkpoint fault, analysed both as a plain stuck-at and as a
/// multiplicity-1 multiple fault, must yield bit-identical scalars.
#[test]
fn multiplicity_one_multi_equals_single_stuck_at() {
    for circuit in [c17(), c95()] {
        let mut dp = DiffProp::new(&circuit);
        for f in checkpoint_faults(&circuit) {
            let single = dp.analyze(&Fault::StuckAt(f));
            let multi = dp.analyze(&Fault::MultiStuckAt(MultiStuckAt::new(vec![f])));
            assert_eq!(
                single.test_count, multi.test_count,
                "test_count for {f:?} on {}",
                circuit.name()
            );
            assert_eq!(
                single.detectability.to_bits(),
                multi.detectability.to_bits(),
                "detectability for {f:?} on {}",
                circuit.name()
            );
            assert_eq!(
                single.observable_outputs, multi.observable_outputs,
                "observability for {f:?} on {}",
                circuit.name()
            );
            assert_eq!(multi.fixpoint_iterations, 0, "acyclic model iterated");
            assert_eq!(multi.oscillation_density.to_bits(), 0f64.to_bits());
        }
    }
}

/// The feedback fixpoint is conservative: fed a bridge with *no* feedback
/// path, it converges to the exact same analysis as the one-pass NFBF
/// route — OBDD canonicity makes "the same" bit-for-bit.
#[test]
fn fixpoint_on_nonfeedback_bridge_equals_one_pass_analysis() {
    for circuit in [c17(), c95()] {
        let mut dp = DiffProp::new(&circuit);
        for kind in [BridgeKind::And, BridgeKind::Or] {
            for bridge in enumerate_nfbfs(&circuit, kind).into_iter().take(40) {
                let direct = dp
                    .try_analyze(&Fault::Bridging(bridge))
                    .expect("one-pass NFBF analysis failed");
                let fixed = dp
                    .try_analyze_bridge_fixpoint(&bridge)
                    .expect("fixpoint analysis of an acyclic bridge failed");
                assert_eq!(
                    direct.test_count, fixed.test_count,
                    "test_count for {bridge:?} on {}",
                    circuit.name()
                );
                assert_eq!(
                    direct.detectability.to_bits(),
                    fixed.detectability.to_bits(),
                    "detectability for {bridge:?} on {}",
                    circuit.name()
                );
                assert_eq!(
                    direct.observable_outputs, fixed.observable_outputs,
                    "observability for {bridge:?} on {}",
                    circuit.name()
                );
                assert_eq!(
                    direct.site_function_constant, fixed.site_function_constant,
                    "site flag for {bridge:?} on {}",
                    circuit.name()
                );
                // No loop, no residual: the wired value settles everywhere,
                // and monotone convergence from all-X needs exactly two
                // sweeps (one to fill, one to confirm).
                assert_eq!(fixed.oscillation_density.to_bits(), 0f64.to_bits());
                assert!(
                    fixed.fixpoint_iterations >= 2,
                    "fixpoint claims convergence without a confirming sweep"
                );
            }
        }
    }
}

/// Renders a whole sweep as golden-format lines (losslessly, outcome
/// column included) for whole-universe comparison.
fn sweep_lines(circuit: &diffprop::netlist::Circuit, faults: &[Fault], config: &SweepConfig) -> Vec<String> {
    sweep_universe(circuit, faults, config)
        .summaries
        .iter()
        .enumerate()
        .map(|(idx, s)| summary_line(circuit.name(), "x", idx, s))
        .collect()
}

/// The determinism contract, extended to the new models: every schedule —
/// serial or threaded, private managers or a shared frozen snapshot,
/// batched or not — produces byte-identical summaries, oscillation
/// densities included.
#[test]
fn extended_models_are_schedule_invariant() {
    for circuit in [c17(), c95()] {
        let mut faults = feedback_universe(&circuit, 30);
        faults.extend(multi_universe(&circuit, 60));
        let baseline = sweep_lines(
            &circuit,
            &faults,
            &SweepConfig {
                parallelism: Parallelism::Serial,
                manager: ManagerMode::Private,
                ..Default::default()
            },
        );
        for parallelism in [Parallelism::Serial, Parallelism::Threads(2), Parallelism::Threads(4)] {
            for manager in [ManagerMode::Private, ManagerMode::SharedSnapshot] {
                for batch in [1, 8] {
                    let config = SweepConfig {
                        parallelism,
                        manager,
                        batch,
                        ..Default::default()
                    };
                    assert_eq!(
                        baseline,
                        sweep_lines(&circuit, &faults, &config),
                        "summaries drift on {} under {parallelism:?}/{manager:?}/batch {batch}",
                        circuit.name()
                    );
                }
            }
        }
    }
}
