//! Bridging-fault study for one circuit: enumeration, layout-weighted
//! sampling, stuck-at equivalence, and AND-vs-OR comparison (paper §4.2).
//!
//! Run with: `cargo run --release --example bridging_analysis [circuit] [sample]`

use diffprop::analysis::{analyze_faults, Histogram};
use diffprop::faults::{enumerate_nfbfs, sample_nfbfs, tune_theta, BridgeKind, Fault, SampleConfig};
use diffprop::netlist::{generators, Circuit};

fn load(arg: &str) -> Circuit {
    match arg {
        "c17" => generators::c17(),
        "full_adder" => generators::full_adder(),
        "c95" => generators::c95(),
        "alu74181" => generators::alu74181(),
        "c432s" => generators::c432_surrogate(),
        "c499s" => generators::c499_surrogate(),
        "c1355s" => generators::c1355_surrogate(),
        "c1908s" => generators::c1908_surrogate(),
        other => panic!("unknown circuit {other}"),
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "alu74181".into());
    let sample: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("sample must be a number"))
        .unwrap_or(200);
    let circuit = load(&arg);
    println!(
        "=== bridging-fault analysis: {} ({} gates) ===\n",
        circuit.name(),
        circuit.num_gates()
    );

    for kind in [BridgeKind::And, BridgeKind::Or] {
        let all = enumerate_nfbfs(&circuit, kind);
        println!("{kind} NFBFs: {} potentially detectable pairs", all.len());

        let faults: Vec<Fault> = if all.len() > sample {
            let theta = tune_theta(&circuit, &all, sample);
            println!("  sampling {sample} with exponential distance weighting (θ = {theta:.3})");
            sample_nfbfs(
                &circuit,
                &all,
                SampleConfig {
                    count: sample,
                    theta,
                    seed: 1990,
                },
            )
            .into_iter()
            .map(Fault::from)
            .collect()
        } else {
            all.into_iter().map(Fault::from).collect()
        };

        let records = analyze_faults(&circuit, &faults);
        let detectable = records.iter().filter(|r| r.is_detectable()).count();
        let stuck_like = records.iter().filter(|r| r.site_function_constant).count();
        let mean: f64 = records
            .iter()
            .filter(|r| r.is_detectable())
            .map(|r| r.detectability)
            .sum::<f64>()
            / detectable.max(1) as f64;
        println!("  detectable: {detectable}/{}", records.len());
        println!(
            "  behave as stuck-at faults: {stuck_like}/{} ({:.1}%)",
            records.len(),
            100.0 * stuck_like as f64 / records.len().max(1) as f64
        );
        println!("  mean detectability of detectable faults: {mean:.4}");
        println!("  detection probability profile:");
        let h = Histogram::from_values(15, records.iter().map(|r| r.detectability));
        for line in h.to_string().lines() {
            println!("    {line}");
        }
        println!();
    }

    println!(
        "The paper's finding — AND and OR NFBFs behave almost identically \
         except for the stuck-at-equivalence proportions — can be read \
         directly off the two profiles above."
    );
}
