//! Testability report: the paper's §4.1 analyses for one circuit, ending in
//! a design-for-testability recommendation.
//!
//! Run with: `cargo run --release --example testability_report [circuit|file.bench]`
//!
//! `circuit` is one of the built-in benchmarks (`c17`, `full_adder`, `c95`,
//! `alu74181`, `c432s`, `c499s`, `c1355s`, `c1908s`; default `alu74181`),
//! or a path to an ISCAS-85 `.bench` netlist.

use diffprop::analysis::topology::{
    detectability_vs_pi_distance, detectability_vs_po_distance, pos_fed_vs_observed,
    render_curve,
};
use diffprop::analysis::{analyze_faults, stuck_at_universe, Histogram};
use diffprop::netlist::{generators, parse_bench, Circuit};

fn load(arg: &str) -> Circuit {
    match arg {
        "c17" => generators::c17(),
        "full_adder" => generators::full_adder(),
        "c95" => generators::c95(),
        "alu74181" => generators::alu74181(),
        "c432s" => generators::c432_surrogate(),
        "c499s" => generators::c499_surrogate(),
        "c1355s" => generators::c1355_surrogate(),
        "c1908s" => generators::c1908_surrogate(),
        path => {
            let src = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            parse_bench(&src, path).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
        }
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "alu74181".into());
    let circuit = load(&arg);
    println!(
        "=== testability report: {} ({} PIs, {} POs, {} gates) ===\n",
        circuit.name(),
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_gates()
    );

    let faults = stuck_at_universe(&circuit, true);
    println!("collapsed checkpoint faults: {}", faults.len());
    let records = analyze_faults(&circuit, &faults);

    let detectable = records.iter().filter(|r| r.is_detectable()).count();
    println!(
        "detectable: {detectable}/{} ({} redundant)\n",
        records.len(),
        records.len() - detectable
    );

    println!("detection probability profile (fault proportions):");
    let h = Histogram::from_values(20, records.iter().map(|r| r.detectability));
    println!("{h}");

    println!("adherence profile (how tight the syndrome bound is):");
    let a = Histogram::from_values(20, records.iter().filter_map(|r| r.adherence));
    println!("{a}");

    println!("detectability vs max levels to PO (the bathtub curve):");
    let po_curve = detectability_vs_po_distance(&records);
    println!("{}", render_curve(&po_curve, "levels to PO"));

    println!("detectability vs levels from PI (for comparison):");
    let pi_curve = detectability_vs_pi_distance(&records);
    println!("{}", render_curve(&pi_curve, "levels from PI"));

    let (equal, total) = pos_fed_vs_observed(&records);
    println!(
        "faults observable at every PO they feed: {equal}/{total} ({:.1}%)\n",
        100.0 * equal as f64 / total.max(1) as f64
    );

    // DFT recommendation, per the paper's conclusions: target the circuit
    // middle, and prefer observation points over control points.
    if let Some(worst) = po_curve
        .iter()
        .filter(|b| b.faults >= 3)
        .min_by(|a, b| a.mean_detectability.total_cmp(&b.mean_detectability))
    {
        println!(
            "DFT recommendation: the hardest faults sit {} levels from the POs \
             (mean detectability {:.4} over {} faults).",
            worst.distance, worst.mean_detectability, worst.faults
        );
        println!(
            "The paper's data (and this circuit's) favour adding OBSERVATION \
             points at that depth rather than control points: detectability \
             correlates with PO distance, not PI distance."
        );
    }
}
