//! Fault diagnosis with a Difference-Propagation-built dictionary.
//!
//! Builds a compact test set, derives every fault's full-response signature
//! from its per-output difference functions, injects a "defect" behind the
//! scenes, and locates it from the tester response alone.
//!
//! Run with: `cargo run --release --example diagnosis [circuit] [fault-index]`

use diffprop::core::{generate_tests, FaultDictionary};
use diffprop::faults::{checkpoint_faults, Fault};
use diffprop::netlist::{generators, Circuit};

fn load(arg: &str) -> Circuit {
    match arg {
        "c17" => generators::c17(),
        "full_adder" => generators::full_adder(),
        "c95" => generators::c95(),
        "alu74181" => generators::alu74181(),
        "c432s" => generators::c432_surrogate(),
        other => panic!("unknown circuit {other}"),
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "c95".into());
    let circuit = load(&arg);
    println!("=== dictionary diagnosis: {} ===\n", circuit.name());

    let faults: Vec<Fault> = checkpoint_faults(&circuit)
        .into_iter()
        .map(Fault::from)
        .collect();
    let tests = generate_tests(&circuit, &faults);
    println!(
        "test set: {} vectors covering {} faults",
        tests.vectors.len(),
        tests.covered
    );

    let dict = FaultDictionary::build(&circuit, &faults, &tests.vectors);
    println!(
        "dictionary: {} faults × {} tests × {} outputs; {} distinguishable classes",
        dict.num_faults(),
        dict.num_tests(),
        dict.num_outputs(),
        dict.num_distinguishable_classes()
    );

    // Secretly pick the defect.
    let defect_index: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("fault index"))
        .unwrap_or(7)
        % faults.len();
    let defect = faults[defect_index].clone();

    // The tester only sees pass/fail per (vector, output): simulate that.
    let observed = {
        use diffprop::sim::faulty_outputs;
        let rows: Vec<Vec<bool>> = tests
            .vectors
            .iter()
            .map(|v| {
                let good = circuit.eval(v);
                let bad = faulty_outputs(&circuit, &defect, v);
                good.iter().zip(&bad).map(|(g, b)| g != b).collect()
            })
            .collect();
        rows
    };
    let failing_tests = observed.iter().filter(|r| r.iter().any(|&b| b)).count();
    println!("\ninjected defect (hidden from the diagnoser): {defect}");
    println!("tester response: {failing_tests} failing vectors");

    // Diagnose: the observation is exactly a signature.
    let observation = dict.signature(defect_index).clone();
    debug_assert_eq!(
        observation.rows(),
        &observed[..],
        "dictionary signatures must equal simulated responses"
    );
    let ranked = dict.diagnose(&observation);
    println!("\ntop candidates:");
    for c in ranked.iter().take(5) {
        println!("  distance {:>2}: {}", c.distance, c.fault);
    }
    let exact: Vec<&str> = ranked
        .iter()
        .take_while(|c| c.distance == 0)
        .map(|_| "·")
        .collect();
    println!(
        "\n{} candidate(s) match exactly; the injected fault {} among them.",
        exact.len(),
        if ranked
            .iter()
            .take_while(|c| c.distance == 0)
            .any(|c| c.fault_index == defect_index)
        {
            "IS"
        } else {
            "is NOT"
        }
    );
}
