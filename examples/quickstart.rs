//! Quickstart: exact fault analysis of C17 with Difference Propagation.
//!
//! Run with: `cargo run --example quickstart`

use diffprop::core::{analyze_universe, DiffProp, EngineConfig, Parallelism};
use diffprop::faults::{
    checkpoint_faults, enumerate_nfbfs, BridgeKind, Fault,
};
use diffprop::netlist::generators::c17;

fn main() {
    let circuit = c17();
    println!(
        "circuit {}: {} inputs, {} outputs, {} gates\n",
        circuit.name(),
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_gates()
    );

    let mut dp = DiffProp::new(&circuit);

    // --- A stuck-at fault -------------------------------------------------
    let stuck = Fault::from(checkpoint_faults(&circuit)[0]);
    let analysis = dp.analyze(&stuck);
    println!("fault: {stuck}");
    println!("  detectable:      {}", analysis.is_detectable());
    println!("  detectability:   {:.4}", analysis.detectability);
    println!("  exact tests:     {:?}", analysis.test_count);
    println!("  observable POs:  {}/{}", analysis.num_observable(), circuit.num_outputs());
    if let Some(bound) = dp.detectability_bound(&stuck) {
        println!("  syndrome bound:  {bound:.4}");
    }
    if let Some(adherence) = dp.adherence(&analysis) {
        println!("  adherence:       {adherence:.4}");
    }
    println!("  complete test set as cubes over inputs {:?}:",
        circuit.inputs().iter().map(|&n| circuit.net_name(n)).collect::<Vec<_>>());
    for cube in dp.test_cubes(&analysis) {
        println!("    {cube}  ({} vectors)", cube.num_minterms());
    }

    // --- A bridging fault -------------------------------------------------
    let bridge = Fault::from(enumerate_nfbfs(&circuit, BridgeKind::And)[0]);
    let analysis = dp.analyze(&bridge);
    println!("\nfault: {bridge}");
    println!("  detectability:   {:.4}", analysis.detectability);
    println!("  stuck-at-like:   {}", analysis.site_function_constant);
    if let Some(vector) = dp.pick_test(&analysis) {
        println!("  one test vector: {vector:?}");
        assert!(diffprop::sim::detects(&circuit, &bridge, &vector));
        println!("  (verified against the bit-parallel fault simulator)");
    }

    // --- A whole universe, sharded over worker threads --------------------
    // `analyze_universe` partitions the fault list over scoped threads, each
    // with its own BDD manager, and merges per-fault results in fault order.
    // The summaries are bit-identical to a serial sweep; only the wall-clock
    // and the per-shard manager statistics change.
    let universe: Vec<Fault> = checkpoint_faults(&circuit)
        .into_iter()
        .map(Fault::from)
        .collect();
    let sweep = analyze_universe(
        &circuit,
        &universe,
        EngineConfig::default(),
        Parallelism::Threads(2),
    );
    let serial = analyze_universe(
        &circuit,
        &universe,
        EngineConfig::default(),
        Parallelism::Serial,
    );
    assert_eq!(sweep.summaries, serial.summaries);
    println!("\nsharded sweep over {} checkpoint faults:", universe.len());
    for report in &sweep.shards {
        println!(
            "  worker {}: {} faults ({} classes) in {} chunks, unique-table hit rate {:.1}%, peak {} nodes",
            report.shard,
            report.faults_done,
            report.classes_done,
            report.chunks_claimed,
            100.0 * report.stats.unique.hit_rate(),
            report.stats.peak_nodes
        );
    }
    let detected = sweep
        .summaries
        .iter()
        .filter(|s| s.detectability > 0.0)
        .count();
    println!("  {detected}/{} faults detectable (identical to serial)", universe.len());
}
