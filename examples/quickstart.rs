//! Quickstart: exact fault analysis of C17 with Difference Propagation.
//!
//! Run with: `cargo run --example quickstart`

use diffprop::core::DiffProp;
use diffprop::faults::{
    checkpoint_faults, enumerate_nfbfs, BridgeKind, Fault,
};
use diffprop::netlist::generators::c17;

fn main() {
    let circuit = c17();
    println!(
        "circuit {}: {} inputs, {} outputs, {} gates\n",
        circuit.name(),
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_gates()
    );

    let mut dp = DiffProp::new(&circuit);

    // --- A stuck-at fault -------------------------------------------------
    let stuck = Fault::from(checkpoint_faults(&circuit)[0]);
    let analysis = dp.analyze(&stuck);
    println!("fault: {stuck}");
    println!("  detectable:      {}", analysis.is_detectable());
    println!("  detectability:   {:.4}", analysis.detectability);
    println!("  exact tests:     {:?}", analysis.test_count);
    println!("  observable POs:  {}/{}", analysis.num_observable(), circuit.num_outputs());
    if let Some(bound) = dp.detectability_bound(&stuck) {
        println!("  syndrome bound:  {bound:.4}");
    }
    if let Some(adherence) = dp.adherence(&analysis) {
        println!("  adherence:       {adherence:.4}");
    }
    println!("  complete test set as cubes over inputs {:?}:",
        circuit.inputs().iter().map(|&n| circuit.net_name(n)).collect::<Vec<_>>());
    for cube in dp.test_cubes(&analysis) {
        println!("    {cube}  ({} vectors)", cube.num_minterms());
    }

    // --- A bridging fault -------------------------------------------------
    let bridge = Fault::from(enumerate_nfbfs(&circuit, BridgeKind::And)[0]);
    let analysis = dp.analyze(&bridge);
    println!("\nfault: {bridge}");
    println!("  detectability:   {:.4}", analysis.detectability);
    println!("  stuck-at-like:   {}", analysis.site_function_constant);
    if let Some(vector) = dp.pick_test(&analysis) {
        println!("  one test vector: {vector:?}");
        assert!(diffprop::sim::detects(&circuit, &bridge, &vector));
        println!("  (verified against the bit-parallel fault simulator)");
    }
}
