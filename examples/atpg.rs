//! ATPG: compact deterministic test generation from complete test sets,
//! with exact redundancy identification — the application the paper's §3
//! positions Difference Propagation for.
//!
//! Run with: `cargo run --release --example atpg [circuit]`

use diffprop::core::generate_tests;
use diffprop::faults::{checkpoint_faults, enumerate_nfbfs, BridgeKind, Fault};
use diffprop::netlist::{generators, Circuit};
use diffprop::sim::detects;

fn load(arg: &str) -> Circuit {
    match arg {
        "c17" => generators::c17(),
        "full_adder" => generators::full_adder(),
        "c95" => generators::c95(),
        "alu74181" => generators::alu74181(),
        "c432s" => generators::c432_surrogate(),
        "c499s" => generators::c499_surrogate(),
        "c1355s" => generators::c1355_surrogate(),
        "c1908s" => generators::c1908_surrogate(),
        other => panic!("unknown circuit {other}"),
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "alu74181".into());
    let circuit = load(&arg);
    println!(
        "=== ATPG via Difference Propagation: {} ===\n",
        circuit.name()
    );

    // Target list: all checkpoint stuck-at faults plus the small-circuit
    // bridging sets (mixed fault models in one run — DP does not care).
    let mut faults: Vec<Fault> = checkpoint_faults(&circuit)
        .into_iter()
        .map(Fault::from)
        .collect();
    let num_stuck = faults.len();
    if circuit.num_gates() <= 150 {
        for kind in [BridgeKind::And, BridgeKind::Or] {
            faults.extend(enumerate_nfbfs(&circuit, kind).into_iter().map(Fault::from));
        }
    }
    println!(
        "targets: {} faults ({} stuck-at, {} bridging)",
        faults.len(),
        num_stuck,
        faults.len() - num_stuck
    );

    let t = std::time::Instant::now();
    let tests = generate_tests(&circuit, &faults);
    println!("generation time: {:?}", t.elapsed());
    println!(
        "result: {} vectors cover {}/{} faults; {} proven undetectable",
        tests.vectors.len(),
        tests.covered,
        faults.len(),
        tests.undetectable.len()
    );
    println!(
        "compaction: {:.1} faults per vector",
        tests.covered as f64 / tests.vectors.len().max(1) as f64
    );

    // Independent verification with the bit-parallel fault simulator.
    let mut verified = 0;
    for f in &faults {
        if tests.undetectable.contains(f) {
            continue;
        }
        assert!(
            tests.vectors.iter().any(|v| detects(&circuit, f, v)),
            "{f} missed by the generated set"
        );
        verified += 1;
    }
    println!("verified by simulation: {verified} faults covered ✓");

    for f in &tests.undetectable {
        println!("undetectable (redundant logic): {f}");
    }

    println!("\nfirst vectors:");
    for v in tests.vectors.iter().take(10) {
        let s: String = v.iter().map(|&b| if b { '1' } else { '0' }).collect();
        println!("  {s}");
    }
}
