//! Test-planning study: what exact detectabilities buy a test engineer.
//!
//! 1. Predicts pseudo-random test length requirements in closed form from
//!    Difference Propagation's exact detection probabilities (no fault
//!    simulation), and cross-checks one point by simulation.
//! 2. Reproduces the Hughes–McCluskey experiment (the paper's reference
//!    [2]): the multiple-stuck-at coverage of a complete single-stuck-at
//!    test set.
//!
//! Run with: `cargo run --release --example test_length_study [circuit]`

use diffprop::analysis::coverage::{double_fault_coverage, expected_random_coverage};
use diffprop::analysis::{analyze_faults, stuck_at_universe};
use diffprop::netlist::{generators, Circuit};
use diffprop::sim::random_detectability;

fn load(arg: &str) -> Circuit {
    match arg {
        "c17" => generators::c17(),
        "full_adder" => generators::full_adder(),
        "c95" => generators::c95(),
        "alu74181" => generators::alu74181(),
        "c432s" => generators::c432_surrogate(),
        other => panic!("unknown circuit {other}"),
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "alu74181".into());
    let circuit = load(&arg);
    println!("=== test-length study: {} ===\n", circuit.name());

    let faults = stuck_at_universe(&circuit, true);
    let records = analyze_faults(&circuit, &faults);
    println!("collapsed checkpoint faults: {}", records.len());

    println!("\nexpected pseudo-random coverage (closed form from exact detectabilities):");
    let lengths = [1, 4, 16, 64, 256, 1024, 4096];
    for (k, cov) in expected_random_coverage(&records, &lengths) {
        let bar = "#".repeat((cov * 50.0).round() as usize);
        println!("  {k:>5} vectors: {:6.2}% {bar}", cov * 100.0);
    }

    // Cross-check one point by actual random simulation.
    let k = 256;
    let hits = faults
        .iter()
        .filter(|f| {
            let (det, _) = random_detectability(&circuit, f, k, 99);
            det > 0
        })
        .count();
    println!(
        "\nsimulated {k}-vector random coverage: {:.2}% (prediction above: closed form)",
        100.0 * hits as f64 / faults.len() as f64
    );

    println!("\nHughes–McCluskey: double-fault coverage of a complete single-fault set");
    let result = double_fault_coverage(&circuit, 200, 1990);
    println!(
        "  test set: {} vectors; sampled {} double faults ({} detectable)",
        result.test_vectors, result.sampled, result.detectable
    );
    println!(
        "  detected by the single-fault set: {} ({:.1}%)",
        result.detected,
        100.0 * result.coverage()
    );
    println!(
        "\nThe same machinery answers the bridging-fault version of this \
         question — see `bridging_analysis` and the Figure 5 data."
    );
}
