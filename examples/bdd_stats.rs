//! Dumps BDD manager statistics for the full stuck-at sweeps used in the
//! EXPERIMENTS.md node-count / cache-hit-rate table.
//!
//! ```text
//! cargo run --release --example bdd_stats
//! ```
//!
//! For c95 and the 74181 ALU, runs a serial Difference Propagation sweep
//! over **every** stuck-at fault (`all_stuck_faults`) and prints the
//! manager counters that the complement-edge refactor targets: peak node
//! count, final node count, unique-table pressure and per-family op-cache
//! hit rates.

use diffprop::core::{analyze_universe, EngineConfig, Parallelism};
use diffprop::faults::{all_stuck_faults, Fault};
use diffprop::netlist::generators::{alu74181, c95};

fn main() {
    for circuit in [c95(), alu74181()] {
        let faults: Vec<Fault> = all_stuck_faults(&circuit)
            .into_iter()
            .map(Fault::from)
            .collect();
        let sweep =
            analyze_universe(&circuit, &faults, EngineConfig::default(), Parallelism::Serial);
        let stats = sweep.merged_stats();
        let detected = sweep.summaries.iter().filter(|s| s.is_detectable()).count();
        println!(
            "== {} | {} stuck-at faults | {} detectable ==",
            circuit.name(),
            faults.len(),
            detected
        );
        println!("peak nodes: {}", stats.peak_nodes);
        println!(
            "unique table: {} lookups, {:.2}% hit",
            stats.unique.lookups,
            100.0 * stats.unique.hit_rate()
        );
        let total = stats.op_total();
        println!(
            "op cache:     {} lookups, {:.2}% hit",
            total.lookups,
            100.0 * total.hit_rate()
        );
        println!("{}", stats);
    }
}
